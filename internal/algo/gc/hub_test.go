package gc

import (
	"testing"

	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/graph"
)

// hubFixture is a skewed graph with a real hub prefix at k=64.
func hubFixture(t testing.TB) (*graph.CSR, *graph.HubSplit) {
	t.Helper()
	g := rmat(t, 10, 8, 21)
	hs := graph.BuildHubSplit(g, 64)
	if hs.HubEdges() == 0 {
		t.Fatal("fixture has no hub edges")
	}
	return g, hs
}

func TestPullHubValid(t *testing.T) {
	g := rmat(t, 10, 8, 21)
	part := graph.NewPartition(g.N(), 4)
	for _, k := range []int{0, 1, 64, 512, g.N()} {
		hs := graph.BuildHubSplit(g, k)
		res, err := PullHub(g, hs, part, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g, res.Colors); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Iterations < 1 {
			t.Fatalf("k=%d: no iterations recorded", k)
		}
	}
}

func TestPullHubPartitionMismatch(t *testing.T) {
	g, hs := hubFixture(t)
	if _, err := PullHub(g, hs, graph.NewPartition(5, 2), Options{}); err == nil {
		t.Fatal("partition mismatch accepted")
	}
}

// The serial instrumented runs are deterministic (partitions execute in
// order), so hub caching must reproduce the plain pull coloring exactly:
// the scan visits the same conflict edges with the same outcomes.
func TestPullHubProfiledMatchesPlainProfiled(t *testing.T) {
	g, hs := hubFixture(t)
	part := graph.NewPartition(g.N(), 3)

	profPlain, _ := core.CountingProfile(3)
	want, err := PullProfiled(g, part, Options{}, profPlain, nil)
	if err != nil {
		t.Fatal(err)
	}
	profHub, _ := core.CountingProfile(3)
	got, err := PullHubProfiled(g, hs, part, Options{}, profHub, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iterations != want.Iterations {
		t.Fatalf("iterations: hub %d, plain %d", got.Iterations, want.Iterations)
	}
	for v := range want.Colors {
		if got.Colors[v] != want.Colors[v] {
			t.Fatalf("vertex %d: hub color %d, plain color %d", v, got.Colors[v], want.Colors[v])
		}
	}
	if err := Validate(g, got.Colors); err != nil {
		t.Fatal(err)
	}
}

// FE discovery is race-free in both directions (the candidate set is
// canonicalized before conflict resolution), so the hub-cached variant
// must produce the identical coloring and direction trace.
func TestFrontierExploitHubMatchesPlain(t *testing.T) {
	g, hs := hubFixture(t)
	for _, tc := range []struct {
		name   string
		dir    core.Direction
		policy func() core.SwitchPolicy
	}{
		{"pull", core.Pull, func() core.SwitchPolicy { return nil }},
		{"push", core.Push, func() core.SwitchPolicy { return nil }},
		{"push-gs", core.Push, func() core.SwitchPolicy { return &core.GenericSwitch{Threshold: 1} }},
	} {
		opt := Options{MaxIters: 4096}
		opt.Threads = 4
		want := FrontierExploit(g, opt, tc.dir, tc.policy())
		got := FrontierExploitHub(g, hs, opt, tc.dir, tc.policy())
		if got.Iterations != want.Iterations || got.NumColors != want.NumColors {
			t.Fatalf("%s: hub (%d iters, %d colors) vs plain (%d iters, %d colors)",
				tc.name, got.Iterations, got.NumColors, want.Iterations, want.NumColors)
		}
		for v := range want.Colors {
			if got.Colors[v] != want.Colors[v] {
				t.Fatalf("%s: vertex %d: hub color %d, plain color %d",
					tc.name, v, got.Colors[v], want.Colors[v])
			}
		}
		for i := range want.Dirs {
			if got.Dirs[i] != want.Dirs[i] {
				t.Fatalf("%s: iteration %d direction differs", tc.name, i)
			}
		}
	}
}

func TestFrontierExploitHubProfiledMatchesPlain(t *testing.T) {
	g, hs := hubFixture(t)
	opt := Options{MaxIters: 4096}
	want := FrontierExploit(g, opt, core.Pull, nil)
	prof, grp := core.CountingProfile(2)
	got, err := FrontierExploitHubProfiled(g, hs, opt, core.Pull, nil, prof, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want.Colors {
		if got.Colors[v] != want.Colors[v] {
			t.Fatalf("vertex %d: profiled hub color %d, plain color %d",
				v, got.Colors[v], want.Colors[v])
		}
	}
	if rep := grp.Report(); rep.Get(counters.Reads) == 0 {
		t.Fatal("instrumented run charged no reads")
	}
}

// Hub caching must not introduce per-edge or per-iteration allocation:
// a hub run may allocate only the fixed k-entry caches on top of the
// plain run's setup. Threads 1 keeps ParallelFor inline so goroutine
// spawning does not drown the measurement; the Boman pool still spins
// up workers, which is why the bound is a small constant, not zero.
func TestHubKernelAllocs(t *testing.T) {
	g, hs := hubFixture(t)
	part := graph.NewPartition(g.N(), 1)
	seq := core.Options{Threads: 1}

	plainBoman := testing.AllocsPerRun(5, func() { Pull(g, part, Options{Options: seq}) })
	hubBoman := testing.AllocsPerRun(5, func() { PullHub(g, hs, part, Options{Options: seq}) })
	if hubBoman > plainBoman+8 {
		t.Errorf("hub Boman pull allocates %.0f vs plain %.0f: cache setup should cost O(1) allocs",
			hubBoman, plainBoman)
	}

	plainFE := testing.AllocsPerRun(5, func() {
		FrontierExploit(g, Options{Options: seq, MaxIters: 4096}, core.Pull, nil)
	})
	hubFE := testing.AllocsPerRun(5, func() {
		FrontierExploitHub(g, hs, Options{Options: seq, MaxIters: 4096}, core.Pull, nil)
	})
	if hubFE > plainFE+8 {
		t.Errorf("hub FE allocates %.0f vs plain %.0f: cache setup should cost O(1) allocs",
			hubFE, plainFE)
	}
}
