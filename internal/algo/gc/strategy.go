package gc

import (
	"sort"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/frontier"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// FrontierExploit runs the FE strategy of §5: a maximal independent set is
// colored c₀ first; each iteration i colors the uncolored neighbors of the
// current frontier with the single fresh color cᵢ. A candidate whose
// neighbor already took cᵢ this round defers — it is adjacent to a winner,
// so the next frontier rediscovers it — which is what gives the strategy
// its multi-round traversal structure and gives Generic-Switch a real
// progress/conflict signal to steer by. The frontier's neighborhood is the
// only state touched per round instead of every vertex — the memory-access
// reduction the strategy exists for.
//
// policy steers the run: core.NeverSwitch{} is plain FE, a
// core.GenericSwitch adds GS (flip push↔pull when conflicts dominate), and
// a core.GreedySwitch adds GrS (fall back to the sequential greedy scheme
// for the remainder). dir is the starting direction.
func FrontierExploit(g *graph.CSR, opt Options, dir core.Direction, policy core.SwitchPolicy) *Result {
	return frontierExploit(g, nil, opt, dir, policy)
}

// frontierExploit is the shared FE body; a non-nil hs serves pull-round
// frontier probes of hub neighbors from a k-bit cache (FrontierExploitHub).
func frontierExploit(g *graph.CSR, hs *graph.HubSplit, opt Options, dir core.Direction, policy core.SwitchPolicy) *Result {
	opt.defaults()
	if policy == nil {
		policy = core.NeverSwitch{}
	}
	n := g.N()
	res := &Result{Colors: make([]int32, n)}
	res.Stats.Direction = dir
	if n == 0 {
		return res
	}
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	t := sched.Clamp(opt.Threads, n)

	// Round 0: greedy maximal independent set, colored c₀ = 0.
	start := time.Now()
	inF := frontier.NewBitmap(n)
	var f []graph.V
	for v := graph.V(0); v < g.NumV; v++ {
		ok := true
		for _, u := range g.Neighbors(v) {
			if inF.Get(u) {
				ok = false
				break
			}
		}
		if ok {
			inF.SetSeq(v)
			colors[v] = 0
			f = append(f, v)
		}
	}
	colored := len(f)
	nextColor := int32(1)
	res.Iterations++
	res.Dirs = append(res.Dirs, dir)
	res.Stats.Record(time.Since(start))
	opt.Tick(0, res.Stats.PerIteration[0])

	progress, conflicts := colored, 0
	perThread := frontier.NewPerThread(t)
	candMark := frontier.NewBitmap(n)

	// Round bodies hoisted out of the iteration loop so the steady state
	// does not allocate; f is captured by reference, so each round's
	// frontier rebuild stays visible. cands lives across rounds too —
	// Merge resets it, reusing the backing slice.
	var cands frontier.Sparse
	discoverPush := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			for _, u := range g.Neighbors(f[i]) {
				if colors[u] < 0 && candMark.Set(u) { // atomic claim
					perThread.Add(w, u)
				}
			}
		}
	}
	discoverPull := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			if colors[v] >= 0 {
				continue
			}
			for _, u := range g.Neighbors(v) {
				if inF.Get(u) {
					// Only the owner marks v (the pull invariant),
					// but the bitmap packs 64 vertices per word, so
					// block-boundary words are shared: Set's CAS
					// keeps the word write safe.
					candMark.Set(v)
					perThread.Add(w, v)
					break
				}
			}
		}
	}
	// Hub-cached pull discovery: hub neighbors' frontier membership comes
	// from the k-bit cache (refreshed per round), residuals from the full
	// bitmap. The candidate set is identical — only the probe target moves.
	var hubF *hubFrontier
	if hs != nil {
		hubF = newHubFrontier(hs)
	}
	discoverPullHub := func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			if colors[v] >= 0 {
				continue
			}
			found := false
			for _, sl := range hs.HubRow(v) {
				if hubF.get(sl) {
					found = true
					break
				}
			}
			if !found {
				for _, u := range hs.ResidualRow(v) {
					if inF.Get(u) {
						found = true
						break
					}
				}
			}
			if found {
				candMark.Set(v)
				perThread.Add(w, v)
			}
		}
	}
	byID := func(i, j int) bool { return cands.Vertices()[i] < cands.Vertices()[j] }

	for colored < n && res.Iterations < opt.MaxIters {
		if opt.Canceled() {
			res.Stats.Canceled = true
			break
		}
		start = time.Now()
		switch policy.Decide(res.Iterations, progress, conflicts, n-colored) {
		case core.SwitchDirection:
			if dir == core.Push {
				dir = core.Pull
			} else {
				dir = core.Push
			}
		case core.GoSequential:
			// GrS: finish the small remainder with the optimized greedy
			// scheme — one final "iteration".
			greedyColorSubset(g, colors, nil)
			colored = n
			res.Iterations++
			res.Dirs = append(res.Dirs, dir)
			el := time.Since(start)
			res.Stats.Record(el)
			opt.Tick(res.Iterations-1, el)
			continue
		}

		// Candidate discovery: push lets frontier vertices mark uncolored
		// neighbors; pull lets uncolored vertices search for a frontier
		// neighbor. Both produce the same candidate set with different
		// access patterns (and only push needs the atomic claim).
		candMark.Clear()
		switch {
		case dir == core.Push:
			sched.ParallelFor(len(f), t, sched.Static, 0, discoverPush)
		case hubF != nil:
			hubF.refresh(inF)
			sched.ParallelFor(n, t, sched.Static, 0, discoverPullHub)
		default:
			sched.ParallelFor(n, t, sched.Static, 0, discoverPull)
		}
		perThread.Merge(&cands)
		// Canonical id order: the candidate *set* is deterministic, but the
		// per-thread merge order is not (push claims race); sorting makes
		// the winner set — and with it the iteration count — reproducible.
		sort.Slice(cands.Vertices(), byID)

		// Deterministic conflict resolution: a candidate takes the round's
		// color cᵢ unless a neighbor — necessarily a same-round winner,
		// earlier colors are all < cᵢ — already holds it; then it defers.
		// The first candidate always wins, so every round makes progress.
		ci := nextColor
		conflicts = 0
		winners := cands.Vertices()[:0]
		for _, v := range cands.Vertices() {
			ok := true
			for _, u := range g.Neighbors(v) {
				if colors[u] == ci {
					ok = false
					break
				}
			}
			if !ok {
				conflicts++
				continue
			}
			colors[v] = ci
			winners = append(winners, v)
		}
		nextColor = ci + 1
		colored += len(winners)
		progress = len(winners)

		// New frontier = this round's winners; every deferred loser is
		// adjacent to one, so the next round rediscovers it.
		inF.Clear()
		f = append(f[:0], winners...)
		for _, v := range winners {
			inF.SetSeq(v)
		}

		res.Iterations++
		res.Dirs = append(res.Dirs, dir)
		el := time.Since(start)
		res.Stats.Record(el)
		opt.Tick(res.Iterations-1, el)
		if progress == 0 {
			// No frontier-adjacent uncolored vertex remains (isolated
			// leftovers); finish them greedily.
			greedyColorSubset(g, colors, nil)
			colored = n
		}
	}
	if colored < n && !res.Stats.Canceled {
		// The MaxIters bound cut the run short (one fresh color per round
		// means high-chromatic graphs need many rounds): finish the
		// remainder with the sequential greedy scheme as one final
		// iteration, so the returned coloring is always valid.
		start = time.Now()
		greedyColorSubset(g, colors, nil)
		res.Iterations++
		res.Dirs = append(res.Dirs, dir)
		el := time.Since(start)
		res.Stats.Record(el)
		opt.Tick(res.Iterations-1, el)
	}
	copy(res.Colors, colors)
	res.NumColors = CountColors(res.Colors)
	// A Generic-Switch flip mid-run changes dir; report the direction the
	// run finished in, with Dirs carrying the full per-iteration truth.
	res.Stats.Direction = dir
	return res
}

// GrS is the paper's Greedy-Switch configuration for coloring: FE with a
// fallback to sequential greedy once fewer than fraction·n vertices remain
// (the paper observes thrashing below 0.1·n, §5).
func GrS(g *graph.CSR, opt Options, dir core.Direction, fraction float64) *Result {
	if fraction <= 0 {
		fraction = 0.1
	}
	return FrontierExploit(g, opt, dir, &core.GreedySwitch{Fraction: fraction, Total: g.N()})
}

// GS is the paper's Generic-Switch configuration: FE that flips direction
// when the progress/conflict ratio of an iteration falls below threshold.
func GS(g *graph.CSR, opt Options, dir core.Direction, threshold float64) *Result {
	if threshold <= 0 {
		threshold = 1
	}
	return FrontierExploit(g, opt, dir, &core.GenericSwitch{Threshold: threshold})
}
