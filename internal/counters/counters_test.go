package counters

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEventString(t *testing.T) {
	if got := Atomics.String(); got != "atomics" {
		t.Fatalf("Atomics.String() = %q", got)
	}
	if got := TLBInstMiss.String(); got != "TLB misses (inst)" {
		t.Fatalf("TLBInstMiss.String() = %q", got)
	}
	if got := Event(-1).String(); !strings.Contains(got, "Event(") {
		t.Fatalf("invalid event string = %q", got)
	}
	if got := Event(999).String(); !strings.Contains(got, "Event(") {
		t.Fatalf("invalid event string = %q", got)
	}
}

func TestRecorderAddGetReset(t *testing.T) {
	var r Recorder
	r.Add(Reads, 10)
	r.Inc(Reads)
	r.Add(Atomics, 3)
	if got := r.Get(Reads); got != 11 {
		t.Fatalf("Reads = %d, want 11", got)
	}
	if got := r.Get(Atomics); got != 3 {
		t.Fatalf("Atomics = %d, want 3", got)
	}
	r.Reset()
	if got := r.Get(Reads); got != 0 {
		t.Fatalf("Reads after reset = %d", got)
	}
}

func TestAggregate(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	a.Add(Writes, 5)
	b.Add(Writes, 7)
	b.Add(Locks, 2)
	rep := Aggregate([]*Recorder{a, b, nil})
	if got := rep.Get(Writes); got != 12 {
		t.Fatalf("Writes = %d, want 12", got)
	}
	if got := rep.Get(Locks); got != 2 {
		t.Fatalf("Locks = %d, want 2", got)
	}
}

func TestReportArithmetic(t *testing.T) {
	a, b := &Recorder{}, &Recorder{}
	a.Add(Reads, 100)
	b.Add(Reads, 40)
	ra := Aggregate([]*Recorder{a})
	rb := Aggregate([]*Recorder{b})
	if got := ra.Add(rb).Get(Reads); got != 140 {
		t.Fatalf("Add: Reads = %d, want 140", got)
	}
	if got := ra.Sub(rb).Get(Reads); got != 60 {
		t.Fatalf("Sub: Reads = %d, want 60", got)
	}
	if got := ra.Scale(10).Get(Reads); got != 10 {
		t.Fatalf("Scale: Reads = %d, want 10", got)
	}
	if got := ra.Scale(0).Get(Reads); got != 100 {
		t.Fatalf("Scale(0) must be identity, got %d", got)
	}
}

func TestReportNonZeroAndString(t *testing.T) {
	var r Recorder
	r.Add(L1Miss, 1)
	r.Add(BranchesCond, 2)
	rep := Aggregate([]*Recorder{&r})
	nz := rep.NonZero()
	if len(nz) != 2 || nz[0] != L1Miss || nz[1] != BranchesCond {
		t.Fatalf("NonZero = %v", nz)
	}
	s := rep.String()
	if !strings.Contains(s, "L1 misses") || !strings.Contains(s, "branches (cond)") {
		t.Fatalf("String() = %q", s)
	}
}

func TestGroup(t *testing.T) {
	g := NewGroup(4)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	for i := 0; i < 4; i++ {
		g.Recorder(i).Add(Messages, int64(i))
	}
	if got := g.Report().Get(Messages); got != 6 {
		t.Fatalf("group Messages = %d, want 6", got)
	}
	g.Reset()
	if got := g.Report().Get(Messages); got != 0 {
		t.Fatalf("after Reset = %d", got)
	}
}

func TestHuman(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{9999, "9999"},
		{10_000, "10.00k"},
		{234_000_000, "234.00M"},
		{1_066_000_000, "1.07B"},
		{3_169_000_000_000, "3.17T"},
		{-25_000, "-25.00k"},
	}
	for _, c := range cases {
		if got := Human(c.in); got != c.want {
			t.Errorf("Human(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTable1EventsOrder(t *testing.T) {
	evs := Table1Events()
	if len(evs) != 11 {
		t.Fatalf("Table1Events has %d entries, want 11", len(evs))
	}
	if evs[0] != L1Miss || evs[10] != BranchesCond {
		t.Fatalf("unexpected order: %v", evs)
	}
}

func TestDMEvents(t *testing.T) {
	evs := DMEvents()
	if len(evs) != 6 {
		t.Fatalf("DMEvents has %d entries", len(evs))
	}
}

func TestCountProbe(t *testing.T) {
	p := NewCountProbe()
	p.Read(0, 8)
	p.Read(8, 8)
	p.Write(0, 8)
	p.Atomic(16, 8)
	p.Lock(24)
	p.Branch(true)
	p.Branch(false)
	p.Jump()
	p.Exec(0) // no-op for counting probe
	r := p.Rec
	if r.Get(Reads) != 2 || r.Get(Writes) != 1 || r.Get(Atomics) != 1 ||
		r.Get(Locks) != 1 || r.Get(BranchesCond) != 2 || r.Get(BranchesUncond) != 1 {
		t.Fatalf("unexpected counts: %+v", Aggregate([]*Recorder{r}))
	}
}

func TestMultiProbe(t *testing.T) {
	a, b := NewCountProbe(), NewCountProbe()
	m := MultiProbe{a, b}
	m.Read(0, 8)
	m.Write(0, 8)
	m.Atomic(0, 8)
	m.Lock(0)
	m.Branch(true)
	m.Jump()
	m.Exec(1)
	for i, p := range []*CountProbe{a, b} {
		if p.Rec.Get(Reads) != 1 || p.Rec.Get(Writes) != 1 || p.Rec.Get(Atomics) != 1 {
			t.Fatalf("probe %d missed events", i)
		}
	}
}

// Property: aggregation is order-independent and equals the sum of parts.
func TestAggregateCommutes(t *testing.T) {
	f := func(xs, ys []int8) bool {
		a, b := &Recorder{}, &Recorder{}
		for _, x := range xs {
			a.Add(Event(int(uint8(x))%int(NumEvents)), 1)
		}
		for _, y := range ys {
			b.Add(Event(int(uint8(y))%int(NumEvents)), 1)
		}
		ab := Aggregate([]*Recorder{a, b})
		ba := Aggregate([]*Recorder{b, a})
		for e := Event(0); e < NumEvents; e++ {
			if ab.Get(e) != ba.Get(e) {
				return false
			}
			if ab.Get(e) != a.Get(e)+b.Get(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortedNames(t *testing.T) {
	names := SortedNames()
	if len(names) != int(NumEvents) {
		t.Fatalf("len = %d, want %d", len(names), NumEvents)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("not sorted at %d: %q > %q", i, names[i-1], names[i])
		}
	}
}
