// Package counters implements the event-accounting substrate that stands in
// for the paper's PAPI hardware counters and manual atomic/lock counting
// (§6, "Counted Events").
//
// The paper records nine PAPI events (L1/L2/L3 misses, data/instruction TLB
// misses, reads, writes, conditional/unconditional branches) plus manually
// counted atomics and locks, and — in distributed settings — messages,
// collectives and remote reads/writes/atomics. This package defines that
// taxonomy, per-thread recorders that do not false-share, and a Probe
// interface through which instrumented ("profiled") algorithm variants
// report every event at exactly the R/W-marked points of the paper's
// listings. Cache and TLB misses are produced by internal/memsim, which
// plugs in behind the same Probe.
package counters

import (
	"fmt"
	"sort"
	"strings"
)

// Event identifies one counted event class.
type Event int

// The event taxonomy. The first block mirrors Table 1 of the paper; the
// second block covers the distributed-memory experiments (§6.3).
const (
	L1Miss Event = iota
	L2Miss
	L3Miss
	TLBDataMiss
	TLBInstMiss
	Atomics
	Locks
	Reads
	Writes
	BranchesUncond
	BranchesCond

	Messages
	BytesSent
	Collectives
	RemoteReads
	RemoteWrites
	RemoteAtomics

	NumEvents
)

var eventNames = [NumEvents]string{
	"L1 misses",
	"L2 misses",
	"L3 misses",
	"TLB misses (data)",
	"TLB misses (inst)",
	"atomics",
	"locks",
	"reads",
	"writes",
	"branches (uncond)",
	"branches (cond)",
	"messages",
	"bytes sent",
	"collectives",
	"remote reads",
	"remote writes",
	"remote atomics",
}

// String returns the human-readable event name used in report rows.
func (e Event) String() string {
	if e < 0 || e >= NumEvents {
		return fmt.Sprintf("Event(%d)", int(e))
	}
	return eventNames[e]
}

// Table1Events lists the events, in paper order, that make up Table 1.
func Table1Events() []Event {
	return []Event{
		L1Miss, L2Miss, L3Miss, TLBDataMiss, TLBInstMiss,
		Atomics, Locks, Reads, Writes, BranchesUncond, BranchesCond,
	}
}

// DMEvents lists the events recorded in the distributed-memory experiments.
func DMEvents() []Event {
	return []Event{Messages, BytesSent, Collectives, RemoteReads, RemoteWrites, RemoteAtomics}
}

// Recorder accumulates event counts for one thread. It is padded so a slice
// of Recorders can be indexed by worker ID without false sharing. Recorder
// methods are not atomic: each worker must own its Recorder exclusively.
type Recorder struct {
	counts [NumEvents]int64
	_      [64 - (NumEvents*8)%64%64]byte // pad to a cache-line boundary
}

// Add adds n occurrences of event e.
func (r *Recorder) Add(e Event, n int64) { r.counts[e] += n }

// Inc adds one occurrence of event e.
func (r *Recorder) Inc(e Event) { r.counts[e]++ }

// Get returns the count for event e.
func (r *Recorder) Get(e Event) int64 { return r.counts[e] }

// Reset zeroes all counts.
func (r *Recorder) Reset() { r.counts = [NumEvents]int64{} }

// Report is an aggregated, immutable view of event counts.
type Report struct {
	counts [NumEvents]int64
}

// Get returns the aggregated count for event e.
func (p Report) Get(e Event) int64 { return p.counts[e] }

// Add returns the event-wise sum of two reports.
func (p Report) Add(q Report) Report {
	var out Report
	for i := range p.counts {
		out.counts[i] = p.counts[i] + q.counts[i]
	}
	return out
}

// Sub returns the event-wise difference p − q.
func (p Report) Sub(q Report) Report {
	var out Report
	for i := range p.counts {
		out.counts[i] = p.counts[i] - q.counts[i]
	}
	return out
}

// Scale returns the report with every count divided by div (integer
// division), used to convert totals into per-iteration values as Table 1
// does for PR and BGC.
func (p Report) Scale(div int64) Report {
	if div == 0 {
		return p
	}
	var out Report
	for i := range p.counts {
		out.counts[i] = p.counts[i] / div
	}
	return out
}

// NonZero returns the events with non-zero counts, ordered by event id.
func (p Report) NonZero() []Event {
	var out []Event
	for e := Event(0); e < NumEvents; e++ {
		if p.counts[e] != 0 {
			out = append(out, e)
		}
	}
	return out
}

// String formats the report with one "name: value" pair per line, using
// compact human units (k/M/B/T) as in the paper's Table 1.
func (p Report) String() string {
	var b strings.Builder
	for e := Event(0); e < NumEvents; e++ {
		if p.counts[e] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-18s %s\n", e.String()+":", Human(p.counts[e]))
	}
	return b.String()
}

// Aggregate sums a set of per-thread recorders into one Report.
func Aggregate(recs []*Recorder) Report {
	var out Report
	for _, r := range recs {
		if r == nil {
			continue
		}
		for i := range out.counts {
			out.counts[i] += r.counts[i]
		}
	}
	return out
}

// Group owns one Recorder per worker thread and hands out stable pointers.
type Group struct {
	recs []*Recorder
}

// NewGroup creates a group with n per-thread recorders.
func NewGroup(n int) *Group {
	g := &Group{recs: make([]*Recorder, n)}
	for i := range g.recs {
		g.recs[i] = &Recorder{}
	}
	return g
}

// Recorder returns the recorder for worker id.
func (g *Group) Recorder(id int) *Recorder { return g.recs[id] }

// Len returns the number of recorders in the group.
func (g *Group) Len() int { return len(g.recs) }

// Report aggregates all recorders.
func (g *Group) Report() Report { return Aggregate(g.recs) }

// Reset zeroes every recorder.
func (g *Group) Reset() {
	for _, r := range g.recs {
		r.Reset()
	}
}

// Human formats n with the paper's compact units: plain below 10^4, then
// k (10^3), M (10^6), B (10^9), T (10^12), keeping two significant decimals
// for scaled values.
func Human(n int64) string {
	neg := ""
	if n < 0 {
		neg = "-"
		n = -n
	}
	switch {
	case n < 10_000:
		return fmt.Sprintf("%s%d", neg, n)
	case n < 1_000_000:
		return fmt.Sprintf("%s%.2fk", neg, float64(n)/1e3)
	case n < 1_000_000_000:
		return fmt.Sprintf("%s%.2fM", neg, float64(n)/1e6)
	case n < 1_000_000_000_000:
		return fmt.Sprintf("%s%.2fB", neg, float64(n)/1e9)
	default:
		return fmt.Sprintf("%s%.2fT", neg, float64(n)/1e12)
	}
}

// SortedNames returns all event names sorted alphabetically; useful for
// stable diagnostic output.
func SortedNames() []string {
	out := make([]string, NumEvents)
	for i := range out {
		out[i] = eventNames[i]
	}
	sort.Strings(out)
	return out
}
