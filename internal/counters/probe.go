package counters

// Probe receives the memory-access and control-flow events of a profiled
// algorithm variant. Every profiled push/pull implementation reports its
// accesses at exactly the R / W -marked points of the paper's algorithm
// listings (§4), so a Probe sees the same event stream PAPI would observe
// on the authors' machines.
//
// Addresses are synthetic: internal/memsim assigns each modeled array a
// base address in a flat address space, and algorithms report
// base + index*elemSize. A Probe that only counts may ignore them.
//
// Probes are per-thread: each worker drives its own Probe instance, so
// implementations need no internal locking.
type Probe interface {
	// Read reports a shared-memory load of size bytes at addr.
	Read(addr uint64, size int)
	// Write reports a shared-memory store of size bytes at addr.
	Write(addr uint64, size int)
	// Atomic reports an atomic read-modify-write (FAA/CAS) at addr. For
	// cache modeling it behaves as a write that also reads.
	Atomic(addr uint64, size int)
	// Lock reports a lock acquisition protecting addr.
	Lock(addr uint64)
	// Branch reports a conditional branch (taken or not).
	Branch(taken bool)
	// Jump reports an unconditional branch (loop back-edge, call).
	Jump()
	// Exec reports instruction fetch within code region id; regions map to
	// distinct code pages, feeding the instruction-TLB model.
	Exec(region int)
}

// CountProbe is a Probe that only counts events into a Recorder; it ignores
// addresses and models no caches.
type CountProbe struct {
	Rec *Recorder
}

// NewCountProbe returns a counting probe over a fresh Recorder.
func NewCountProbe() *CountProbe { return &CountProbe{Rec: &Recorder{}} }

func (p *CountProbe) Read(addr uint64, size int)   { p.Rec.Inc(Reads) }
func (p *CountProbe) Write(addr uint64, size int)  { p.Rec.Inc(Writes) }
func (p *CountProbe) Atomic(addr uint64, size int) { p.Rec.Inc(Atomics) }
func (p *CountProbe) Lock(addr uint64)             { p.Rec.Inc(Locks) }
func (p *CountProbe) Branch(taken bool)            { p.Rec.Inc(BranchesCond) }
func (p *CountProbe) Jump()                        { p.Rec.Inc(BranchesUncond) }
func (p *CountProbe) Exec(region int)              {}

// NopProbe discards every event; it measures the instrumentation skeleton's
// own overhead in benchmarks.
type NopProbe struct{}

func (NopProbe) Read(addr uint64, size int)   {}
func (NopProbe) Write(addr uint64, size int)  {}
func (NopProbe) Atomic(addr uint64, size int) {}
func (NopProbe) Lock(addr uint64)             {}
func (NopProbe) Branch(taken bool)            {}
func (NopProbe) Jump()                        {}
func (NopProbe) Exec(region int)              {}

// MultiProbe fans every event out to several probes (e.g. a CountProbe plus
// a memsim probe).
type MultiProbe []Probe

func (m MultiProbe) Read(addr uint64, size int) {
	for _, p := range m {
		p.Read(addr, size)
	}
}
func (m MultiProbe) Write(addr uint64, size int) {
	for _, p := range m {
		p.Write(addr, size)
	}
}
func (m MultiProbe) Atomic(addr uint64, size int) {
	for _, p := range m {
		p.Atomic(addr, size)
	}
}
func (m MultiProbe) Lock(addr uint64) {
	for _, p := range m {
		p.Lock(addr)
	}
}
func (m MultiProbe) Branch(taken bool) {
	for _, p := range m {
		p.Branch(taken)
	}
}
func (m MultiProbe) Jump() {
	for _, p := range m {
		p.Jump()
	}
}
func (m MultiProbe) Exec(region int) {
	for _, p := range m {
		p.Exec(region)
	}
}

// Compile-time interface checks.
var (
	_ Probe = (*CountProbe)(nil)
	_ Probe = NopProbe{}
	_ Probe = MultiProbe(nil)
)
