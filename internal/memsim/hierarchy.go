package memsim

import (
	"pushpull/internal/counters"
)

// MachineConfig bundles the cache and TLB geometry of one modeled machine.
// L1, L2, DTLB and ITLB are private per thread; L3 is shared by all threads
// of the machine, matching the Xeon parts used in the paper's testbeds.
type MachineConfig struct {
	Name string
	L1   CacheConfig
	L2   CacheConfig
	L3   CacheConfig
	DTLB TLBConfig
	ITLB TLBConfig
}

// XeonE5SandyBridge models the Cray XC30 node CPU of the paper (Intel Xeon
// E5-2670, Sandy Bridge): 32 KiB 8-way L1d, 256 KiB 8-way L2, 20 MiB 20-way
// shared L3, 64-entry 4 KiB DTLB.
func XeonE5SandyBridge() MachineConfig {
	return MachineConfig{
		Name: "XC30 (Xeon E5-2670)",
		L1:   CacheConfig{Name: "L1d", Size: 32 << 10, Ways: 8, LineSize: 64},
		L2:   CacheConfig{Name: "L2", Size: 256 << 10, Ways: 8, LineSize: 64},
		L3:   CacheConfig{Name: "L3", Size: 20 << 20, Ways: 20, LineSize: 64},
		DTLB: TLBConfig{Name: "DTLB", Entries: 64, PageSize: 4 << 10},
		ITLB: TLBConfig{Name: "ITLB", Entries: 128, PageSize: 4 << 10},
	}
}

// HaswellTrivium models the Trivium commodity server (Intel Core i7-4770,
// Haswell): 32 KiB L1d, 256 KiB L2, 8 MiB 16-way shared L3 (§6, setup).
func HaswellTrivium() MachineConfig {
	return MachineConfig{
		Name: "Trivium (i7-4770)",
		L1:   CacheConfig{Name: "L1d", Size: 32 << 10, Ways: 8, LineSize: 64},
		L2:   CacheConfig{Name: "L2", Size: 256 << 10, Ways: 8, LineSize: 64},
		L3:   CacheConfig{Name: "L3", Size: 8 << 20, Ways: 16, LineSize: 64},
		DTLB: TLBConfig{Name: "DTLB", Entries: 64, PageSize: 4 << 10},
		ITLB: TLBConfig{Name: "ITLB", Entries: 128, PageSize: 4 << 10},
	}
}

// Hierarchy is one thread's view of the memory system: private L1/L2/TLBs
// plus a pointer to the machine-shared L3. Profiled runs drive threads in a
// deterministic order, so the shared L3 needs no locking.
type Hierarchy struct {
	L1, L2 *Cache
	L3     *Cache // shared across the machine's hierarchies
	DTLB   *TLB
	ITLB   *TLB

	rec *counters.Recorder
}

// Machine owns the shared L3 and the per-thread hierarchies.
type Machine struct {
	cfg     MachineConfig
	L3      *Cache
	Threads []*Hierarchy
	space   AddressSpace
}

// NewMachine builds a machine with t thread-private hierarchies.
func NewMachine(cfg MachineConfig, t int) *Machine {
	if t < 1 {
		t = 1
	}
	m := &Machine{cfg: cfg, L3: NewCache(cfg.L3)}
	m.Threads = make([]*Hierarchy, t)
	for i := range m.Threads {
		m.Threads[i] = &Hierarchy{
			L1:   NewCache(cfg.L1),
			L2:   NewCache(cfg.L2),
			L3:   m.L3,
			DTLB: NewTLB(cfg.DTLB),
			ITLB: NewTLB(cfg.ITLB),
			rec:  &counters.Recorder{},
		}
	}
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() MachineConfig { return m.cfg }

// Space returns the machine's address-space allocator.
func (m *Machine) Space() *AddressSpace { return &m.space }

// Probes returns one counters.Probe per thread, each feeding that thread's
// hierarchy and recorder.
func (m *Machine) Probes() []counters.Probe {
	out := make([]counters.Probe, len(m.Threads))
	for i, h := range m.Threads {
		out[i] = &Probe{H: h}
	}
	return out
}

// Report aggregates the counters of all threads.
func (m *Machine) Report() counters.Report {
	recs := make([]*counters.Recorder, len(m.Threads))
	for i, h := range m.Threads {
		recs[i] = h.rec
	}
	return counters.Aggregate(recs)
}

// Reset clears all caches, TLBs and counters. The address space allocator
// is preserved so modeled arrays keep their bases.
func (m *Machine) Reset() {
	m.L3.Reset()
	for _, h := range m.Threads {
		h.L1.Reset()
		h.L2.Reset()
		h.DTLB.Reset()
		h.ITLB.Reset()
		h.rec.Reset()
	}
}

// data walks each cache line touched by [addr, addr+size) through the
// hierarchy, recording one TLB access per touched page and per-level miss
// events into the thread's recorder.
func (h *Hierarchy) data(addr uint64, size int) {
	if size <= 0 {
		size = 1
	}
	line := uint64(h.L1.LineSize())
	page := uint64(h.DTLB.PageSize())
	first := addr &^ (line - 1)
	last := (addr + uint64(size) - 1) &^ (line - 1)
	prevPage := ^uint64(0)
	for a := first; ; a += line {
		if pg := a &^ (page - 1); pg != prevPage {
			prevPage = pg
			if !h.DTLB.Access(a) {
				h.rec.Inc(counters.TLBDataMiss)
			}
		}
		if !h.L1.Access(a) {
			h.rec.Inc(counters.L1Miss)
			if !h.L2.Access(a) {
				h.rec.Inc(counters.L2Miss)
				if !h.L3.Access(a) {
					h.rec.Inc(counters.L3Miss)
				}
			}
		}
		if a == last {
			break
		}
	}
}

// exec models one instruction fetch in code region id.
func (h *Hierarchy) exec(region int) {
	const codeBase = uint64(1) << 47 // far from any data allocation
	addr := codeBase + uint64(region)*uint64(h.ITLB.PageSize())
	if !h.ITLB.Access(addr) {
		h.rec.Inc(counters.TLBInstMiss)
	}
}

// Probe adapts a Hierarchy to the counters.Probe interface: it both counts
// the paper's software events (reads/writes/atomics/locks/branches) and
// feeds the cache model.
type Probe struct {
	H *Hierarchy
}

var _ counters.Probe = (*Probe)(nil)

func (p *Probe) Read(addr uint64, size int) {
	p.H.rec.Inc(counters.Reads)
	p.H.data(addr, size)
}

func (p *Probe) Write(addr uint64, size int) {
	p.H.rec.Inc(counters.Writes)
	p.H.data(addr, size)
}

func (p *Probe) Atomic(addr uint64, size int) {
	p.H.rec.Inc(counters.Atomics)
	p.H.data(addr, size)
}

func (p *Probe) Lock(addr uint64) {
	p.H.rec.Inc(counters.Locks)
	p.H.data(addr, 8)
}

func (p *Probe) Branch(taken bool) { p.H.rec.Inc(counters.BranchesCond) }
func (p *Probe) Jump()             { p.H.rec.Inc(counters.BranchesUncond) }
func (p *Probe) Exec(region int)   { p.H.exec(region) }

// AddressSpace hands out page-aligned base addresses for modeled arrays.
// The zero value is ready to use.
type AddressSpace struct {
	next uint64
}

// pageAlign is the allocation granularity (one 4 KiB page).
const pageAlign = 4 << 10

// Alloc reserves size bytes and returns the page-aligned base address.
func (a *AddressSpace) Alloc(size uint64) uint64 {
	if a.next == 0 {
		a.next = pageAlign // keep 0 unused as a poison value
	}
	base := a.next
	a.next += (size + pageAlign - 1) &^ uint64(pageAlign-1)
	return base
}

// Array is a modeled array: a base address plus an element size, converting
// indices to probe addresses.
type Array struct {
	Base uint64
	Elem uint64
}

// NewArray allocates a modeled array of n elements of elem bytes each.
func (a *AddressSpace) NewArray(n int, elem int) Array {
	return Array{Base: a.Alloc(uint64(n) * uint64(elem)), Elem: uint64(elem)}
}

// Addr returns the modeled address of element i.
func (ar Array) Addr(i int64) uint64 { return ar.Base + uint64(i)*ar.Elem }

// Size returns the element size in bytes (for probe size arguments).
func (ar Array) Size() int { return int(ar.Elem) }
