package memsim

import (
	"testing"
	"testing/quick"

	"pushpull/internal/counters"
)

func smallCache() *Cache {
	// 4 sets × 2 ways × 64 B lines = 512 B.
	return NewCache(CacheConfig{Name: "t", Size: 512, Ways: 2, LineSize: 64})
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "a", Size: 0, Ways: 1, LineSize: 64},
		{Name: "b", Size: 512, Ways: 2, LineSize: 48},        // not power of two
		{Name: "c", Size: 500, Ways: 2, LineSize: 64},        // not divisible
		{Name: "d", Size: 64 * 2 * 3, Ways: 2, LineSize: 64}, // 3 sets: not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v validated but should not", c)
		}
	}
	good := CacheConfig{Name: "ok", Size: 32 << 10, Ways: 8, LineSize: 64}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1004) { // same line
		t.Fatal("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache() // 2 ways per set; set = (addr>>6) & 3
	// Three distinct lines mapping to set 0: line addresses 0, 4, 8 (<<6).
	a0 := uint64(0 << 6)
	a1 := uint64(4 << 6)
	a2 := uint64(8 << 6)
	c.Access(a0) // miss, install
	c.Access(a1) // miss, install (set full)
	c.Access(a0) // hit, a1 becomes LRU
	c.Access(a2) // miss, evicts a1
	if !c.Access(a0) {
		t.Fatal("a0 should still be cached")
	}
	if c.Access(a1) {
		t.Fatal("a1 should have been evicted (LRU)")
	}
}

func TestCacheReset(t *testing.T) {
	c := smallCache()
	c.Access(0)
	c.Access(0)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("stats not reset")
	}
	if c.Access(0) {
		t.Fatal("cache content survived Reset")
	}
}

func TestCacheCapacitySweep(t *testing.T) {
	// Sequentially touching exactly Size bytes twice: second pass must be
	// all hits (LRU keeps the working set when it fits).
	c := NewCache(CacheConfig{Name: "t", Size: 4096, Ways: 4, LineSize: 64})
	lines := 4096 / 64
	for i := 0; i < lines; i++ {
		c.Access(uint64(i * 64))
	}
	if c.Misses != int64(lines) {
		t.Fatalf("first pass misses=%d want %d", c.Misses, lines)
	}
	for i := 0; i < lines; i++ {
		if !c.Access(uint64(i * 64)) {
			t.Fatalf("second pass missed line %d", i)
		}
	}
}

func TestTLBValidate(t *testing.T) {
	if err := (TLBConfig{Name: "x", Entries: 0, PageSize: 4096}).Validate(); err == nil {
		t.Error("zero entries validated")
	}
	if err := (TLBConfig{Name: "x", Entries: 4, PageSize: 3000}).Validate(); err == nil {
		t.Error("non-pow2 page validated")
	}
}

func TestTLBHitMissLRU(t *testing.T) {
	tl := NewTLB(TLBConfig{Name: "t", Entries: 2, PageSize: 4096})
	p := func(i int) uint64 { return uint64(i) * 4096 }
	if tl.Access(p(0)) {
		t.Fatal("cold hit")
	}
	tl.Access(p(1))
	if !tl.Access(p(0)) {
		t.Fatal("page 0 evicted too early")
	}
	tl.Access(p(2)) // evicts page 1 (LRU)
	if tl.Access(p(1)) {
		t.Fatal("page 1 should have been evicted")
	}
	// That probe missed and re-installed page 1, evicting page 0 (LRU);
	// residents are now {2, 1}.
	if !tl.Access(p(2)) || !tl.Access(p(1)) {
		t.Fatal("resident pages missed")
	}
}

func TestTLBReset(t *testing.T) {
	tl := NewTLB(TLBConfig{Name: "t", Entries: 4, PageSize: 4096})
	tl.Access(0)
	tl.Reset()
	if tl.Hits != 0 || tl.Misses != 0 {
		t.Fatal("stats survived reset")
	}
	if tl.Access(0) {
		t.Fatal("entry survived reset")
	}
}

func TestMachineProbeCounts(t *testing.T) {
	m := NewMachine(HaswellTrivium(), 2)
	probes := m.Probes()
	arr := m.Space().NewArray(1024, 8)

	p0 := probes[0]
	p0.Read(arr.Addr(0), 8)  // miss everywhere
	p0.Read(arr.Addr(1), 8)  // same line: all hits
	p0.Write(arr.Addr(0), 8) // hit
	p0.Atomic(arr.Addr(0), 8)
	p0.Lock(arr.Addr(512))
	p0.Branch(true)
	p0.Jump()
	p0.Exec(0)
	p0.Exec(0)

	rep := m.Report()
	if got := rep.Get(counters.Reads); got != 2 {
		t.Errorf("reads = %d", got)
	}
	if got := rep.Get(counters.Writes); got != 1 {
		t.Errorf("writes = %d", got)
	}
	if got := rep.Get(counters.Atomics); got != 1 {
		t.Errorf("atomics = %d", got)
	}
	if got := rep.Get(counters.Locks); got != 1 {
		t.Errorf("locks = %d", got)
	}
	if got := rep.Get(counters.L1Miss); got != 2 { // line of arr[0] + line of arr[512]
		t.Errorf("L1 misses = %d, want 2", got)
	}
	if got := rep.Get(counters.TLBDataMiss); got != 2 { // two distinct pages
		t.Errorf("DTLB misses = %d, want 2", got)
	}
	if got := rep.Get(counters.TLBInstMiss); got != 1 { // region 0 fetched twice
		t.Errorf("ITLB misses = %d, want 1", got)
	}
	if got := rep.Get(counters.BranchesCond); got != 1 {
		t.Errorf("cond branches = %d", got)
	}
	if got := rep.Get(counters.BranchesUncond); got != 1 {
		t.Errorf("uncond branches = %d", got)
	}
}

func TestSharedL3(t *testing.T) {
	m := NewMachine(HaswellTrivium(), 2)
	probes := m.Probes()
	arr := m.Space().NewArray(16, 8)
	probes[0].Read(arr.Addr(0), 8) // installs into shared L3
	probes[1].Read(arr.Addr(0), 8) // misses private L1/L2, hits shared L3
	rep := m.Report()
	if got := rep.Get(counters.L1Miss); got != 2 {
		t.Errorf("L1 misses = %d, want 2 (private)", got)
	}
	if got := rep.Get(counters.L3Miss); got != 1 {
		t.Errorf("L3 misses = %d, want 1 (shared)", got)
	}
}

func TestMachineReset(t *testing.T) {
	m := NewMachine(HaswellTrivium(), 1)
	p := m.Probes()[0]
	arr := m.Space().NewArray(8, 8)
	p.Read(arr.Addr(0), 8)
	m.Reset()
	rep := m.Report()
	for _, e := range counters.Table1Events() {
		if rep.Get(e) != 0 {
			t.Fatalf("event %v = %d after reset", e, rep.Get(e))
		}
	}
	// Address space preserved: a new array does not overlap the old one.
	arr2 := m.Space().NewArray(8, 8)
	if arr2.Base <= arr.Base {
		t.Fatal("address space was reset")
	}
}

func TestAddressSpaceNonOverlapping(t *testing.T) {
	var s AddressSpace
	a := s.NewArray(1000, 8)
	b := s.NewArray(1000, 4)
	if a.Base == 0 || b.Base == 0 {
		t.Fatal("zero base handed out")
	}
	endA := a.Addr(999) + a.Elem
	if b.Base < endA {
		t.Fatalf("arrays overlap: a ends at %#x, b starts at %#x", endA, b.Base)
	}
	if b.Base%pageAlign != 0 {
		t.Fatalf("base %#x not page aligned", b.Base)
	}
}

func TestStridedAccessMissRate(t *testing.T) {
	// Accesses with a 64-byte stride must miss every line; with an 8-byte
	// stride only every 8th access misses (sequential locality) — this is
	// the mechanism behind pulling's higher miss counts in Table 1.
	m := NewMachine(XeonE5SandyBridge(), 1)
	p := m.Probes()[0]
	arr := m.Space().NewArray(1<<16, 8)

	for i := int64(0); i < 4096; i++ {
		p.Read(arr.Addr(i), 8)
	}
	seqMisses := m.Report().Get(counters.L1Miss)
	m.Reset()
	for i := int64(0); i < 4096; i++ {
		p.Read(arr.Addr(i*8), 8)
	}
	stridedMisses := m.Report().Get(counters.L1Miss)
	if seqMisses*4 > stridedMisses {
		t.Fatalf("sequential misses %d not ≪ strided misses %d", seqMisses, stridedMisses)
	}
}

// Property: hits+misses equals the number of accesses for any address set.
func TestCacheAccessAccounting(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := smallCache()
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		return c.Hits+c.Misses == int64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: repeating the same access twice in a row always hits the second
// time.
func TestCacheImmediateRepeatHits(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := smallCache()
		for _, a := range addrs {
			c.Access(uint64(a))
			if !c.Access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := NewCache(CacheConfig{Name: "b", Size: 32 << 10, Ways: 8, LineSize: 64})
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i) * 64)
	}
}

func BenchmarkHierarchyRead(b *testing.B) {
	m := NewMachine(XeonE5SandyBridge(), 1)
	p := m.Probes()[0]
	arr := m.Space().NewArray(1<<20, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Read(arr.Addr(int64(i)&((1<<20)-1)), 8)
	}
}
