// Package memsim is a software model of a CPU memory hierarchy — set-
// associative L1/L2/L3 caches with LRU replacement plus data and
// instruction TLBs — used to reproduce the cache-miss and TLB-miss rows of
// the paper's Table 1 without PAPI or hardware access.
//
// Profiled algorithm variants report every load/store through a
// counters.Probe backed by a Hierarchy; the hierarchy walks the touched
// cache lines through the levels and increments the corresponding
// counters.Event on each miss. Addresses are synthetic: an AddressSpace
// hands each modeled array a page-aligned base, so layout effects (e.g. the
// partition-aware split of §5 separating local from remote adjacency
// arrays) are visible to the model exactly as they would be to real caches.
//
// The model is deterministic; profiled runs execute their simulated threads
// in a fixed order (see internal/sched.SequentialFor), so reported miss
// counts are reproducible across runs and machines.
package memsim

import (
	"fmt"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name     string
	Size     int // total bytes; must be a multiple of Ways*LineSize
	Ways     int // associativity
	LineSize int // bytes per line
}

// Validate reports whether the geometry is consistent.
func (c CacheConfig) Validate() error {
	if c.Size <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("memsim: %s: non-positive geometry %+v", c.Name, c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("memsim: %s: line size %d is not a power of two", c.Name, c.LineSize)
	}
	if c.Size%(c.Ways*c.LineSize) != 0 {
		return fmt.Errorf("memsim: %s: size %d not divisible by ways*line (%d)", c.Name, c.Size, c.Ways*c.LineSize)
	}
	sets := c.Size / (c.Ways * c.LineSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("memsim: %s: set count %d is not a power of two", c.Name, sets)
	}
	return nil
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	cfg       CacheConfig
	sets      int
	lineShift uint
	setMask   uint64
	tags      []uint64 // sets × ways
	stamps    []uint64 // LRU stamps, parallel to tags
	valid     []bool
	clock     uint64

	Hits   int64
	Misses int64
}

// NewCache builds a cache from its configuration; it panics on invalid
// geometry (a programming error, not a runtime condition).
func NewCache(cfg CacheConfig) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Size / (cfg.Ways * cfg.LineSize)
	shift := uint(0)
	for 1<<shift < cfg.LineSize {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*cfg.Ways),
		stamps:    make([]uint64, sets*cfg.Ways),
		valid:     make([]bool, sets*cfg.Ways),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Access looks up the line containing addr, installing it on a miss.
// It returns true on a hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	lineAddr := addr >> c.lineShift
	set := int(lineAddr & c.setMask)
	tag := lineAddr >> 0 // full line address as tag (set bits included; harmless)
	base := set * c.cfg.Ways
	victim := base
	var victimStamp uint64 = ^uint64(0)
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.valid[i] && c.tags[i] == tag {
			c.stamps[i] = c.clock
			c.Hits++
			return true
		}
		if !c.valid[i] {
			victim, victimStamp = i, 0
		} else if c.stamps[i] < victimStamp {
			victim, victimStamp = i, c.stamps[i]
		}
	}
	c.Misses++
	c.tags[victim] = tag
	c.valid[victim] = true
	c.stamps[victim] = c.clock
	return false
}

// Reset clears all cached lines and statistics.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.Hits, c.Misses, c.clock = 0, 0, 0
}

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// TLBConfig describes a translation lookaside buffer.
type TLBConfig struct {
	Name     string
	Entries  int // fully associative entry count
	PageSize int // bytes; power of two
}

// Validate reports whether the TLB geometry is consistent.
func (c TLBConfig) Validate() error {
	if c.Entries <= 0 || c.PageSize <= 0 {
		return fmt.Errorf("memsim: %s: non-positive geometry %+v", c.Name, c)
	}
	if c.PageSize&(c.PageSize-1) != 0 {
		return fmt.Errorf("memsim: %s: page size %d is not a power of two", c.Name, c.PageSize)
	}
	return nil
}

// TLB is a fully-associative LRU translation buffer.
type TLB struct {
	cfg       TLBConfig
	pageShift uint
	pages     []uint64
	stamps    []uint64
	used      int
	clock     uint64

	Hits   int64
	Misses int64
}

// NewTLB builds a TLB; it panics on invalid geometry.
func NewTLB(cfg TLBConfig) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for 1<<shift < cfg.PageSize {
		shift++
	}
	return &TLB{
		cfg:       cfg,
		pageShift: shift,
		pages:     make([]uint64, cfg.Entries),
		stamps:    make([]uint64, cfg.Entries),
	}
}

// Access translates addr, returning true on a TLB hit.
func (t *TLB) Access(addr uint64) bool {
	t.clock++
	page := addr >> t.pageShift
	victim, victimStamp := 0, ^uint64(0)
	for i := 0; i < t.used; i++ {
		if t.pages[i] == page {
			t.stamps[i] = t.clock
			t.Hits++
			return true
		}
		if t.stamps[i] < victimStamp {
			victim, victimStamp = i, t.stamps[i]
		}
	}
	t.Misses++
	if t.used < t.cfg.Entries {
		victim = t.used
		t.used++
	}
	t.pages[victim] = page
	t.stamps[victim] = t.clock
	return false
}

// Reset clears the TLB contents and statistics.
func (t *TLB) Reset() {
	t.used, t.clock, t.Hits, t.Misses = 0, 0, 0, 0
}

// PageSize returns the page size in bytes.
func (t *TLB) PageSize() int { return t.cfg.PageSize }
