package dm

import (
	"strings"
	"sync/atomic"
	"testing"
)

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, AriesCostModel()); err == nil {
		t.Fatal("P=0 accepted")
	}
}

func TestRunExecutesAllRanks(t *testing.T) {
	c, err := NewCluster(8, AriesCostModel())
	if err != nil {
		t.Fatal(err)
	}
	var seen [8]atomic.Bool
	if err := c.Run(func(r *Rank) { seen[r.ID].Store(true) }); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if !seen[i].Load() {
			t.Fatalf("rank %d never ran", i)
		}
	}
}

func TestSimulatedClockAndBarrier(t *testing.T) {
	c, _ := NewCluster(4, AriesCostModel())
	if err := c.Run(func(r *Rank) {
		r.Charge(float64(r.ID) * 1000) // skewed clocks: 0, 1000, 2000, 3000
		c.Barrier(r)
		// After the barrier all clocks align to max + barrier cost.
		want := 3000 + c.Cost.BarrierCost
		if r.Clock() != want {
			t.Errorf("rank %d clock = %v, want %v", r.ID, r.Clock(), want)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if c.SimTime() < 3000 {
		t.Fatalf("SimTime = %v", c.SimTime())
	}
}

func TestChargeOps(t *testing.T) {
	c, _ := NewCluster(1, AriesCostModel())
	c.Run(func(r *Rank) {
		r.ChargeOps(10)
		if r.Clock() != 10*c.Cost.LocalOp {
			t.Errorf("clock = %v", r.Clock())
		}
	})
}

func TestFailureInjection(t *testing.T) {
	c, _ := NewCluster(3, AriesCostModel())
	err := c.Run(func(r *Rank) {
		if r.ID == 1 {
			panic("injected fault")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestOwnerAndRange(t *testing.T) {
	const n, p = 10, 3
	covered := 0
	for w := 0; w < p; w++ {
		lo, hi := Range(n, p, w)
		covered += hi - lo
		for i := lo; i < hi; i++ {
			if ownerOf(n, p, i) != w {
				t.Fatalf("owner(%d) = %d, want %d", i, ownerOf(n, p, i), w)
			}
		}
	}
	if covered != n {
		t.Fatalf("ranges cover %d", covered)
	}
	// Degenerate: more ranks than items.
	lo, hi := Range(2, 5, 4)
	if lo != hi {
		t.Fatalf("empty range expected, got [%d,%d)", lo, hi)
	}
}

func TestReset(t *testing.T) {
	c, _ := NewCluster(2, AriesCostModel())
	c.Run(func(r *Rank) {
		r.Charge(50)
		c.Barrier(r)
	})
	if c.SimTime() == 0 {
		t.Fatal("no time recorded")
	}
	c.Reset()
	if c.SimTime() != 0 {
		t.Fatal("Reset did not clear sim time")
	}
}

func TestBarrierReuse(t *testing.T) {
	c, _ := NewCluster(4, AriesCostModel())
	if err := c.Run(func(r *Rank) {
		for i := 0; i < 100; i++ {
			c.Barrier(r)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
