// Package rma implements the Remote Memory Access programming model of the
// paper's distributed experiments (§6.3), after foMPI [25]: windows exposed
// by every rank, one-sided Put/Get, float Accumulate, integer
// fetch-and-add, CAS, and Flush.
//
// Two costs carry the §6.3 findings: AccumulateFloat charges the expensive
// locking protocol real MPI implementations use for float accumulation
// (making push-RMA PageRank the slowest variant), while FAAInt64 charges
// the hardware fast path for 64-bit integers (making RMA beat MP for
// triangle counting). Operations on the caller's own window segment charge
// only local cost and no remote counters.
package rma

import (
	"fmt"
	"sync/atomic"

	"pushpull/internal/atomicx"
	"pushpull/internal/counters"
	"pushpull/internal/dm"
)

// FloatWin is a float64 window distributed over all ranks: segment i lives
// on rank i. Values are stored as bits so concurrent accumulates are
// lock-free exactly like the shared-memory push variants.
type FloatWin struct {
	cluster *dm.Cluster
	seg     [][]uint64
}

// NewFloatWin creates a window with the given per-rank segment sizes.
func NewFloatWin(c *dm.Cluster, sizes []int) (*FloatWin, error) {
	if len(sizes) != c.P {
		return nil, fmt.Errorf("rma: %d segment sizes for %d ranks", len(sizes), c.P)
	}
	w := &FloatWin{cluster: c, seg: make([][]uint64, c.P)}
	for i, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("rma: negative segment size %d", s)
		}
		w.seg[i] = make([]uint64, s) //pushpull:allow atomicmix constructor runs before the window is shared; only elements race, never the headers
	}
	return w, nil
}

// SegLen returns the length of rank t's segment.
func (w *FloatWin) SegLen(t int) int { return len(w.seg[t]) } //pushpull:allow atomicmix segment headers are immutable after construction; the atomics guard elements

// Get reads element idx of rank target's segment.
func (w *FloatWin) Get(r *dm.Rank, target, idx int) float64 {
	cost := w.cluster.Cost
	if target == r.ID {
		r.Charge(cost.LocalOp)
	} else {
		r.Charge(cost.RemoteGet + cost.ByteCost*8)
		r.Rec().Inc(counters.RemoteReads)
	}
	return atomicx.LoadFloat64(&w.seg[target][idx])
}

// Put writes element idx of rank target's segment.
func (w *FloatWin) Put(r *dm.Rank, target, idx int, v float64) {
	cost := w.cluster.Cost
	if target == r.ID {
		r.Charge(cost.LocalOp)
	} else {
		r.Charge(cost.RemotePut + cost.ByteCost*8)
		r.Rec().Inc(counters.RemoteWrites)
	}
	atomicx.StoreFloat64(&w.seg[target][idx], v)
}

// Accumulate atomically adds delta to element idx of rank target's segment
// — MPI_Accumulate on floats, charged with the locking-protocol cost that
// makes push-RMA PageRank slow (§6.3.1).
func (w *FloatWin) Accumulate(r *dm.Rank, target, idx int, delta float64) {
	cost := w.cluster.Cost
	if target == r.ID {
		r.Charge(cost.FloatAccum / 4) // local accumulate: no wire, same protocol
	} else {
		r.Charge(cost.FloatAccum + cost.ByteCost*8)
		r.Rec().Inc(counters.RemoteAtomics)
	}
	atomicx.AddFloat64(&w.seg[target][idx], delta)
}

// Flush completes all outstanding operations to target.
func (w *FloatWin) Flush(r *dm.Rank, target int) {
	r.Charge(w.cluster.Cost.Flush)
}

// Local returns the caller's own segment decoded to float64 (a snapshot).
func (w *FloatWin) Local(r *dm.Rank) []float64 {
	seg := w.seg[r.ID] //pushpull:allow atomicmix segment headers are immutable after construction; the atomics guard elements
	out := make([]float64, len(seg))
	for i := range seg {
		out[i] = atomicx.LoadFloat64(&seg[i])
	}
	return out
}

// FillLocal overwrites the caller's own segment.
func (w *FloatWin) FillLocal(r *dm.Rank, v float64) {
	seg := w.seg[r.ID] //pushpull:allow atomicmix segment headers are immutable after construction; the atomics guard elements
	for i := range seg {
		atomicx.StoreFloat64(&seg[i], v)
	}
	r.ChargeOps(len(seg))
}

// IntWin is an int64 window distributed over all ranks.
type IntWin struct {
	cluster *dm.Cluster
	seg     [][]int64
}

// NewIntWin creates an integer window with the given segment sizes.
func NewIntWin(c *dm.Cluster, sizes []int) (*IntWin, error) {
	if len(sizes) != c.P {
		return nil, fmt.Errorf("rma: %d segment sizes for %d ranks", len(sizes), c.P)
	}
	w := &IntWin{cluster: c, seg: make([][]int64, c.P)}
	for i, s := range sizes {
		if s < 0 {
			return nil, fmt.Errorf("rma: negative segment size %d", s)
		}
		w.seg[i] = make([]int64, s) //pushpull:allow atomicmix constructor runs before the window is shared; only elements race, never the headers
	}
	return w, nil
}

// SegLen returns the length of rank t's segment.
func (w *IntWin) SegLen(t int) int { return len(w.seg[t]) } //pushpull:allow atomicmix segment headers are immutable after construction; the atomics guard elements

// Get reads element idx of rank target's segment.
func (w *IntWin) Get(r *dm.Rank, target, idx int) int64 {
	cost := w.cluster.Cost
	if target == r.ID {
		r.Charge(cost.LocalOp)
	} else {
		r.Charge(cost.RemoteGet + cost.ByteCost*8)
		r.Rec().Inc(counters.RemoteReads)
	}
	return atomic.LoadInt64(&w.seg[target][idx])
}

// GetBulk reads count elements starting at idx from target's segment with
// one get (the paper's single-get extreme for fetching adjacency lists,
// §6.3.2: most memory, least communication overhead).
func (w *IntWin) GetBulk(r *dm.Rank, target, idx, count int) []int64 {
	cost := w.cluster.Cost
	out := make([]int64, count)
	if target == r.ID {
		r.ChargeOps(count)
	} else {
		r.Charge(cost.RemoteGet + cost.ByteCost*float64(8*count))
		r.Rec().Inc(counters.RemoteReads)
	}
	for i := 0; i < count; i++ {
		out[i] = atomic.LoadInt64(&w.seg[target][idx+i])
	}
	return out
}

// Put writes element idx of rank target's segment.
func (w *IntWin) Put(r *dm.Rank, target, idx int, v int64) {
	cost := w.cluster.Cost
	if target == r.ID {
		r.Charge(cost.LocalOp)
	} else {
		r.Charge(cost.RemotePut + cost.ByteCost*8)
		r.Rec().Inc(counters.RemoteWrites)
	}
	atomic.StoreInt64(&w.seg[target][idx], v)
}

// FAA atomically adds delta and returns the previous value — the 64-bit
// integer fast path of §6.3.2.
func (w *IntWin) FAA(r *dm.Rank, target, idx int, delta int64) int64 {
	cost := w.cluster.Cost
	if target == r.ID {
		r.Charge(cost.IntFAA / 4)
	} else {
		r.Charge(cost.IntFAA + cost.ByteCost*8)
		r.Rec().Inc(counters.RemoteAtomics)
	}
	return atomic.AddInt64(&w.seg[target][idx], delta) - delta
}

// CAS atomically compares-and-swaps element idx on rank target.
func (w *IntWin) CAS(r *dm.Rank, target, idx int, old, new int64) bool {
	cost := w.cluster.Cost
	if target == r.ID {
		r.Charge(cost.IntFAA / 4)
	} else {
		r.Charge(cost.IntFAA + cost.ByteCost*8)
		r.Rec().Inc(counters.RemoteAtomics)
	}
	return atomic.CompareAndSwapInt64(&w.seg[target][idx], old, new)
}

// Flush completes all outstanding operations to target.
func (w *IntWin) Flush(r *dm.Rank, target int) {
	r.Charge(w.cluster.Cost.Flush)
}

// Local returns a snapshot of the caller's own segment.
func (w *IntWin) Local(r *dm.Rank) []int64 {
	seg := w.seg[r.ID] //pushpull:allow atomicmix segment headers are immutable after construction; the atomics guard elements
	out := make([]int64, len(seg))
	for i := range seg {
		out[i] = atomic.LoadInt64(&seg[i])
	}
	return out
}
