package rma

import (
	"testing"

	"pushpull/internal/counters"
	"pushpull/internal/dm"
)

func cluster(t *testing.T, p int) *dm.Cluster {
	t.Helper()
	c, err := dm.NewCluster(p, dm.AriesCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFloatWinValidation(t *testing.T) {
	c := cluster(t, 2)
	if _, err := NewFloatWin(c, []int{1}); err == nil {
		t.Fatal("size count mismatch accepted")
	}
	if _, err := NewFloatWin(c, []int{1, -1}); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := NewIntWin(c, []int{1}); err == nil {
		t.Fatal("int size count mismatch accepted")
	}
}

func TestFloatWinPutGetAccumulate(t *testing.T) {
	c := cluster(t, 2)
	w, err := NewFloatWin(c, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(r *dm.Rank) {
		if r.ID == 0 {
			w.Put(r, 1, 0, 3.5)      // remote put
			w.Accumulate(r, 1, 0, 1) // remote accumulate
			w.Flush(r, 1)
		}
		c.Barrier(r)
		if r.ID == 1 {
			if got := w.Get(r, 1, 0); got != 4.5 {
				t.Errorf("window value = %v", got)
			}
			local := w.Local(r)
			if local[0] != 4.5 || w.SegLen(1) != 2 {
				t.Errorf("local = %v", local)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.Get(counters.RemoteWrites) != 1 || rep.Get(counters.RemoteAtomics) != 1 {
		t.Fatalf("remote ops: %v", rep)
	}
}

func TestLocalOpsNotCountedRemote(t *testing.T) {
	c := cluster(t, 2)
	w, _ := NewFloatWin(c, []int{2, 2})
	c.Run(func(r *dm.Rank) {
		w.Put(r, r.ID, 0, 1)
		w.Get(r, r.ID, 0)
		w.Accumulate(r, r.ID, 0, 1)
	})
	rep := c.Report()
	if rep.Get(counters.RemoteWrites) != 0 || rep.Get(counters.RemoteReads) != 0 ||
		rep.Get(counters.RemoteAtomics) != 0 {
		t.Fatalf("local ops counted as remote: %v", rep)
	}
}

func TestFloatAccumulateCostAsymmetry(t *testing.T) {
	// The §6.3 mechanism: a remote float accumulate must cost much more
	// than a remote integer FAA.
	c := cluster(t, 2)
	fw, _ := NewFloatWin(c, []int{1, 1})
	iw, _ := NewIntWin(c, []int{1, 1})
	var fCost, iCost float64
	c.Run(func(r *dm.Rank) {
		if r.ID == 0 {
			before := r.Clock()
			fw.Accumulate(r, 1, 0, 1)
			fCost = r.Clock() - before
			before = r.Clock()
			iw.FAA(r, 1, 0, 1)
			iCost = r.Clock() - before
		}
	})
	if fCost < 5*iCost {
		t.Fatalf("float accumulate %v not ≫ int FAA %v", fCost, iCost)
	}
}

func TestIntWinOps(t *testing.T) {
	c := cluster(t, 2)
	w, err := NewIntWin(c, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(func(r *dm.Rank) {
		if r.ID == 0 {
			if prev := w.FAA(r, 1, 2, 5); prev != 0 {
				t.Errorf("FAA prev = %d", prev)
			}
			if prev := w.FAA(r, 1, 2, 3); prev != 5 {
				t.Errorf("FAA prev = %d", prev)
			}
			if !w.CAS(r, 1, 3, 0, 42) {
				t.Error("CAS failed")
			}
			if w.CAS(r, 1, 3, 0, 7) {
				t.Error("stale CAS succeeded")
			}
			w.Put(r, 1, 0, 11)
			w.Flush(r, 1)
		}
		c.Barrier(r)
		if r.ID == 1 {
			if got := w.Get(r, 1, 2); got != 8 {
				t.Errorf("FAA total = %d", got)
			}
			local := w.Local(r)
			if local[0] != 11 || local[3] != 42 {
				t.Errorf("local = %v", local)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGetBulk(t *testing.T) {
	c := cluster(t, 2)
	w, _ := NewIntWin(c, []int{4, 4})
	if err := c.Run(func(r *dm.Rank) {
		if r.ID == 1 {
			for i := 0; i < 4; i++ {
				w.Put(r, 1, i, int64(10+i))
			}
		}
		c.Barrier(r)
		if r.ID == 0 {
			before := r.Rec().Get(counters.RemoteReads)
			vals := w.GetBulk(r, 1, 1, 3)
			if len(vals) != 3 || vals[0] != 11 || vals[2] != 13 {
				t.Errorf("bulk = %v", vals)
			}
			// One get, not three.
			if r.Rec().Get(counters.RemoteReads) != before+1 {
				t.Error("bulk get counted per element")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccumulates(t *testing.T) {
	const p = 4
	c := cluster(t, p)
	w, _ := NewFloatWin(c, []int{1, 0, 0, 0})
	if err := c.Run(func(r *dm.Rank) {
		for i := 0; i < 1000; i++ {
			w.Accumulate(r, 0, 0, 1)
		}
		c.Barrier(r)
		if r.ID == 0 {
			if got := w.Get(r, 0, 0); got != 4000 {
				t.Errorf("sum = %v, want 4000", got)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
}
