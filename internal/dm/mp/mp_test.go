package mp

import (
	"testing"
	"testing/quick"

	"pushpull/internal/counters"
	"pushpull/internal/dm"
)

func cluster(t *testing.T, p int) *dm.Cluster {
	t.Helper()
	c, err := dm.NewCluster(p, dm.AriesCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSendRecv(t *testing.T) {
	c := cluster(t, 2)
	comm := New(c, 4)
	if err := c.Run(func(r *dm.Rank) {
		if r.ID == 0 {
			if err := comm.Send(r, 1, []byte("hello")); err != nil {
				t.Error(err)
			}
		} else {
			msg := comm.Recv(r)
			if string(msg.Payload) != "hello" || msg.From != 0 {
				t.Errorf("msg = %+v", msg)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.Get(counters.Messages) != 1 {
		t.Fatalf("messages = %d", rep.Get(counters.Messages))
	}
	if rep.Get(counters.BytesSent) != 5 {
		t.Fatalf("bytes = %d", rep.Get(counters.BytesSent))
	}
}

func TestSendValidation(t *testing.T) {
	c := cluster(t, 2)
	comm := New(c, 4)
	c.Run(func(r *dm.Rank) {
		if r.ID == 0 {
			if err := comm.Send(r, 9, nil); err == nil {
				t.Error("send to invalid rank accepted")
			}
		}
	})
}

func TestTryRecvEmpty(t *testing.T) {
	c := cluster(t, 1)
	comm := New(c, 4)
	c.Run(func(r *dm.Rank) {
		if _, ok := comm.TryRecv(r); ok {
			t.Error("TryRecv returned a phantom message")
		}
	})
}

func TestAlltoallv(t *testing.T) {
	const p = 4
	c := cluster(t, p)
	comm := New(c, 4)
	if err := c.Run(func(r *dm.Rank) {
		send := make([][]byte, p)
		for d := 0; d < p; d++ {
			send[d] = []byte{byte(r.ID), byte(d)}
		}
		recv, err := comm.Alltoallv(r, send)
		if err != nil {
			t.Error(err)
			return
		}
		for s := 0; s < p; s++ {
			if len(recv[s]) != 2 || recv[s][0] != byte(s) || recv[s][1] != byte(r.ID) {
				t.Errorf("rank %d: recv[%d] = %v", r.ID, s, recv[s])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if got := rep.Get(counters.Collectives); got != p {
		t.Fatalf("collectives = %d", got)
	}
}

func TestAlltoallvValidation(t *testing.T) {
	c := cluster(t, 2)
	comm := New(c, 4)
	c.Run(func(r *dm.Rank) {
		if r.ID == 0 {
			if _, err := comm.Alltoallv(r, make([][]byte, 1)); err == nil {
				t.Error("wrong buffer count accepted")
			}
		}
		// Rank 1 must not enter the collective, or it would deadlock
		// waiting for rank 0 whose call failed validation.
	})
}

func TestAllreduceFloat64(t *testing.T) {
	const p = 3
	c := cluster(t, p)
	comm := New(c, 4)
	if err := c.Run(func(r *dm.Rank) {
		sum, err := comm.AllreduceFloat64(r, float64(r.ID)+0.5)
		if err != nil {
			t.Error(err)
			return
		}
		if sum != 0.5+1.5+2.5 {
			t.Errorf("rank %d: sum = %v", r.ID, sum)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func TestPairCodecRoundTrip(t *testing.T) {
	f := func(idx []int32, vals []float64) bool {
		n := len(idx)
		if len(vals) < n {
			n = len(vals)
		}
		idx, vals = idx[:n], vals[:n]
		buf := EncodePairs(idx, vals)
		gi, gv, err := DecodePairs(buf)
		if err != nil || len(gi) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if gi[i] != idx[i] {
				return false
			}
			// NaN-safe comparison via bit equality is what matters here.
			if gv[i] != vals[i] && !(vals[i] != vals[i] && gv[i] != gv[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodePairs(make([]byte, 5)); err == nil {
		t.Fatal("ragged pair buffer accepted")
	}
}

func TestCountCodecRoundTrip(t *testing.T) {
	idx := []int32{3, 1, 999}
	cnt := []int32{7, 0, -2}
	gi, gc, err := DecodeCounts(EncodeCounts(idx, cnt))
	if err != nil {
		t.Fatal(err)
	}
	for i := range idx {
		if gi[i] != idx[i] || gc[i] != cnt[i] {
			t.Fatalf("round trip: %v %v", gi, gc)
		}
	}
	if _, _, err := DecodeCounts(make([]byte, 3)); err == nil {
		t.Fatal("ragged count buffer accepted")
	}
}
