// Package mp implements the Message-Passing programming model of the
// paper's distributed experiments (§6.3): point-to-point sends/receives
// with per-rank inboxes and the MPI_Alltoallv-style collective used by the
// distributed PageRank, where "each process contributes to the collective
// by both providing a vector of rank updates (it pushes) and receiving
// updates (it pulls)" — the hybrid that eliminates the push/pull
// distinction (§7.2).
//
// Payloads are byte slices: algorithms encode their updates explicitly, so
// the byte counters reflect exactly what would cross a real wire.
package mp

import (
	"encoding/binary"
	"fmt"
	"math"

	"pushpull/internal/counters"
	"pushpull/internal/dm"
)

// Comm is a message-passing communicator over a cluster.
type Comm struct {
	cluster *dm.Cluster
	inbox   []chan Msg
	// board is the alltoallv exchange matrix: board[src][dst].
	board [][][]byte
}

// Msg is one point-to-point message.
type Msg struct {
	From    int
	Payload []byte
}

// New creates a communicator; inboxCap bounds queued messages per rank.
func New(c *dm.Cluster, inboxCap int) *Comm {
	if inboxCap < 1 {
		inboxCap = 1024
	}
	m := &Comm{cluster: c, inbox: make([]chan Msg, c.P), board: make([][][]byte, c.P)}
	for i := range m.inbox {
		m.inbox[i] = make(chan Msg, inboxCap)
		m.board[i] = make([][]byte, c.P)
	}
	return m
}

// Send delivers payload to rank dst. The sender is charged the message
// overhead plus per-byte cost; counters record one message and the bytes.
func (m *Comm) Send(r *dm.Rank, dst int, payload []byte) error {
	if dst < 0 || dst >= m.cluster.P {
		return fmt.Errorf("mp: send to rank %d of %d", dst, m.cluster.P)
	}
	cost := m.cluster.Cost
	r.Charge(cost.MsgOverhead + cost.ByteCost*float64(len(payload)))
	r.Rec().Inc(counters.Messages)
	r.Rec().Add(counters.BytesSent, int64(len(payload)))
	m.inbox[dst] <- Msg{From: r.ID, Payload: payload}
	return nil
}

// Recv blocks until a message arrives; the receiver is charged the
// matching overhead.
func (m *Comm) Recv(r *dm.Rank) Msg {
	msg := <-m.inbox[r.ID]
	r.Charge(m.cluster.Cost.MsgOverhead / 2)
	return msg
}

// TryRecv returns a queued message if one is available.
func (m *Comm) TryRecv(r *dm.Rank) (Msg, bool) {
	select {
	case msg := <-m.inbox[r.ID]:
		r.Charge(m.cluster.Cost.MsgOverhead / 2)
		return msg, true
	default:
		return Msg{}, false
	}
}

// Alltoallv exchanges one byte slice per destination: send[d] goes to rank
// d, and the returned slice holds what every rank sent to the caller
// (indexed by source). The collective costs CollectiveSetup·(P−1) plus the
// byte cost of all outgoing data, and two barriers bound it like a real
// MPI collective.
func (m *Comm) Alltoallv(r *dm.Rank, send [][]byte) ([][]byte, error) {
	p := m.cluster.P
	if len(send) != p {
		return nil, fmt.Errorf("mp: alltoallv with %d buffers for %d ranks", len(send), p)
	}
	cost := m.cluster.Cost
	var bytes int64
	for d, buf := range send {
		m.board[r.ID][d] = buf
		if d != r.ID {
			bytes += int64(len(buf))
		}
	}
	r.Charge(cost.CollectiveSetup*float64(p-1) + cost.ByteCost*float64(bytes))
	r.Rec().Inc(counters.Collectives)
	r.Rec().Add(counters.Messages, int64(p-1))
	r.Rec().Add(counters.BytesSent, bytes)
	m.cluster.Barrier(r)
	out := make([][]byte, p)
	for s := 0; s < p; s++ {
		out[s] = m.board[s][r.ID]
	}
	m.cluster.Barrier(r)
	return out, nil
}

// AllreduceFloat64 sums one float64 across all ranks.
func (m *Comm) AllreduceFloat64(r *dm.Rank, v float64) (float64, error) {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
	send := make([][]byte, m.cluster.P)
	for d := range send {
		send[d] = buf
	}
	parts, err := m.Alltoallv(r, send)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, p := range parts {
		sum += math.Float64frombits(binary.LittleEndian.Uint64(p))
	}
	return sum, nil
}

// EncodePairs packs (index, value) update pairs: 4-byte index + 8-byte
// value each, the wire format of the distributed PR and TC updates.
func EncodePairs(idx []int32, val []float64) []byte {
	buf := make([]byte, 12*len(idx))
	for i := range idx {
		binary.LittleEndian.PutUint32(buf[12*i:], uint32(idx[i]))
		binary.LittleEndian.PutUint64(buf[12*i+4:], math.Float64bits(val[i]))
	}
	return buf
}

// DecodePairs unpacks EncodePairs output.
func DecodePairs(buf []byte) (idx []int32, val []float64, err error) {
	if len(buf)%12 != 0 {
		return nil, nil, fmt.Errorf("mp: pair buffer of %d bytes", len(buf))
	}
	n := len(buf) / 12
	idx = make([]int32, n)
	val = make([]float64, n)
	for i := 0; i < n; i++ {
		idx[i] = int32(binary.LittleEndian.Uint32(buf[12*i:]))
		val[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[12*i+4:]))
	}
	return idx, val, nil
}

// EncodeCounts packs (index, count) pairs at 4+4 bytes, the TC update
// format.
func EncodeCounts(idx []int32, cnt []int32) []byte {
	buf := make([]byte, 8*len(idx))
	for i := range idx {
		binary.LittleEndian.PutUint32(buf[8*i:], uint32(idx[i]))
		binary.LittleEndian.PutUint32(buf[8*i+4:], uint32(cnt[i]))
	}
	return buf
}

// DecodeCounts unpacks EncodeCounts output.
func DecodeCounts(buf []byte) (idx []int32, cnt []int32, err error) {
	if len(buf)%8 != 0 {
		return nil, nil, fmt.Errorf("mp: count buffer of %d bytes", len(buf))
	}
	n := len(buf) / 8
	idx = make([]int32, n)
	cnt = make([]int32, n)
	for i := 0; i < n; i++ {
		idx[i] = int32(binary.LittleEndian.Uint32(buf[8*i:]))
		cnt[i] = int32(binary.LittleEndian.Uint32(buf[8*i+4:]))
	}
	return idx, cnt, nil
}
