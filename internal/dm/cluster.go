// Package dm provides the distributed-memory substrate for the paper's §6.3
// experiments: a simulated cluster of P rank-goroutines exchanging real
// data, with a deterministic simulated clock driven by a calibrated cost
// model.
//
// The paper ran on Cray XC40 nodes with cray-mpich (Message Passing) and
// foMPI (RMA) over the Aries interconnect. Neither the machine nor those
// libraries are available here, so the substitution is: every rank is a
// goroutine; messages and one-sided operations move real bytes through
// shared memory; and every operation charges its rank's clock with a cost
// from the CostModel. Superstep semantics are BSP: Barrier aligns all
// clocks to the maximum. The headline asymmetry of §6.3 — float
// MPI_Accumulate uses an expensive locking protocol while integer
// fetch-and-add has a fast path, making MP beat RMA for PageRank but lose
// for Triangle Counting — is encoded as FloatAccum ≫ IntFAA.
package dm

import (
	"fmt"
	"sync"

	"pushpull/internal/counters"
)

// CostModel holds simulated operation costs in nanoseconds.
type CostModel struct {
	// MsgOverhead is the per-message cost α (matching, envelope handling).
	MsgOverhead float64
	// ByteCost is the per-byte transfer cost β.
	ByteCost float64
	// PackCost is the per-element cost of staging data into send buffers —
	// the "buffer preparation" overhead of §6.3.1.
	PackCost float64
	// UnpackCost is the per-element cost of applying received updates.
	UnpackCost float64
	// RemoteGet is the latency of a one-sided get (plus ByteCost·size).
	RemoteGet float64
	// RemotePut is the latency of a one-sided put.
	RemotePut float64
	// FloatAccum is the cost of MPI_Accumulate on floats — implemented
	// with a locking protocol by the paper's MPI (§6.3.1), hence large.
	FloatAccum float64
	// IntFAA is the cost of the 64-bit integer fetch-and-add fast path
	// (§6.3.2), hence small.
	IntFAA float64
	// LocalOp is the cost of a local memory update.
	LocalOp float64
	// Flush is the cost of an RMA flush.
	Flush float64
	// BarrierCost is the per-barrier synchronization cost.
	BarrierCost float64
	// CollectiveSetup is the alltoallv per-peer setup cost (×(P−1)).
	CollectiveSetup float64
}

// AriesCostModel returns defaults calibrated to reproduce the §6.3 shapes
// (not the paper's absolute times): MP ≫ RMA for PR, RMA > MP for TC,
// pushing-RMA slowest for PR.
func AriesCostModel() CostModel {
	return CostModel{
		MsgOverhead:     2000,
		ByteCost:        0.5,
		PackCost:        120, // software staging of one update element
		UnpackCost:      400, // software matching + apply of one element
		RemoteGet:       700,
		RemotePut:       700,
		FloatAccum:      2500, // float MPI_Accumulate locking protocol
		IntFAA:          250,  // NIC-offloaded integer fetch-and-add
		LocalOp:         2,
		Flush:           500,
		BarrierCost:     1500,
		CollectiveSetup: 150,
	}
}

// Cluster is a simulated machine of P ranks.
type Cluster struct {
	P    int
	Cost CostModel

	clocks []float64
	recs   []*counters.Recorder
	barMu  sync.Mutex
	barN   int
	barGen int
	barC   *sync.Cond

	finalTime float64
}

// NewCluster creates a cluster of p ranks with the given cost model.
func NewCluster(p int, cost CostModel) (*Cluster, error) {
	if p < 1 {
		return nil, fmt.Errorf("dm: cluster needs >= 1 rank, got %d", p)
	}
	c := &Cluster{P: p, Cost: cost, clocks: make([]float64, p), recs: make([]*counters.Recorder, p)}
	for i := range c.recs {
		c.recs[i] = &counters.Recorder{}
	}
	c.barC = sync.NewCond(&c.barMu)
	return c, nil
}

// Rank is one process of the cluster; its methods must only be called from
// the goroutine running it.
type Rank struct {
	ID      int
	Cluster *Cluster
	clock   float64
	rec     *counters.Recorder
}

// Charge adds ns of simulated local time.
func (r *Rank) Charge(ns float64) { r.clock += ns }

// ChargeOps adds n local operations at the model's LocalOp cost.
func (r *Rank) ChargeOps(n int) { r.clock += float64(n) * r.Cluster.Cost.LocalOp }

// Clock returns the rank's current simulated time.
func (r *Rank) Clock() float64 { return r.clock }

// Rec returns the rank's event recorder.
func (r *Rank) Rec() *counters.Recorder { return r.rec }

// Owner returns the rank owning index i of a 1D block decomposition over n
// items (the vertex ownership of §2.2 applied to ranks).
func (r *Rank) Owner(n, i int) int { return ownerOf(n, r.Cluster.P, i) }

func ownerOf(n, p, i int) int {
	base, rem := n/p, n%p
	pivot := rem * (base + 1)
	if i < pivot {
		return i / (base + 1)
	}
	if base == 0 {
		return rem
	}
	return rem + (i-pivot)/base
}

// Range returns the index range [lo, hi) owned by rank w.
func Range(n, p, w int) (int, int) {
	base, rem := n/p, n%p
	if w < rem {
		lo := w * (base + 1)
		return lo, lo + base + 1
	}
	lo := rem*(base+1) + (w-rem)*base
	return lo, lo + base
}

// Barrier synchronizes all ranks and aligns their clocks to the maximum
// (BSP superstep semantics).
func (c *Cluster) Barrier(r *Rank) {
	c.publishAndWait(r)
	max := 0.0
	for _, cl := range c.clocks {
		if cl > max {
			max = cl
		}
	}
	r.clock = max + c.Cost.BarrierCost
	c.wait()
}

// publishAndWait writes the rank's clock and waits for all ranks.
func (c *Cluster) publishAndWait(r *Rank) {
	c.barMu.Lock()
	c.clocks[r.ID] = r.clock
	c.barArrive()
	c.barMu.Unlock()
}

// wait blocks at a plain barrier without publishing.
func (c *Cluster) wait() {
	c.barMu.Lock()
	c.barArrive()
	c.barMu.Unlock()
}

// barArrive implements a generation-counting barrier; callers hold barMu.
func (c *Cluster) barArrive() {
	gen := c.barGen
	c.barN++
	if c.barN == c.P {
		c.barN = 0
		c.barGen++
		c.barC.Broadcast()
		return
	}
	for gen == c.barGen {
		c.barC.Wait()
	}
}

// Run executes fn on every rank concurrently and waits for completion. It
// returns the first rank panic as an error (failure injection for tests)
// and records the final simulated time as the maximum rank clock.
func (c *Cluster) Run(fn func(r *Rank)) (err error) {
	var wg sync.WaitGroup
	errs := make([]error, c.P)
	wg.Add(c.P)
	for i := 0; i < c.P; i++ {
		go func(id int) {
			defer wg.Done()
			r := &Rank{ID: id, Cluster: c, rec: c.recs[id]}
			defer func() {
				if p := recover(); p != nil {
					errs[id] = fmt.Errorf("dm: rank %d failed: %v", id, p)
				}
				c.barMu.Lock()
				if r.clock > c.finalTime {
					c.finalTime = r.clock
				}
				c.barMu.Unlock()
			}()
			fn(r)
		}(i)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// SimTime returns the simulated makespan of the last Run in nanoseconds.
func (c *Cluster) SimTime() float64 { return c.finalTime }

// Report aggregates all rank recorders.
func (c *Cluster) Report() counters.Report { return counters.Aggregate(c.recs) }

// Reset clears clocks, counters and the recorded makespan.
func (c *Cluster) Reset() {
	for i := range c.clocks {
		c.clocks[i] = 0
	}
	for _, r := range c.recs {
		r.Reset()
	}
	c.finalTime = 0
}
