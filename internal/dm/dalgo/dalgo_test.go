package dalgo

import (
	"testing"

	"pushpull/internal/algo/pr"
	"pushpull/internal/algo/tc"
	"pushpull/internal/counters"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

const tol = 1e-9

func testGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smPR(g *graph.CSR, L int) []float64 {
	return pr.Sequential(g, pr.Options{Iterations: L, Damping: 0.85})
}

func TestPRVariantsMatchSharedMemory(t *testing.T) {
	g := testGraph(t)
	want := smPR(g, 10)
	cfg := PRConfig{Ranks: 4, Iterations: 10}

	push, err := PRPushRMA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(push.Values, want); d > tol {
		t.Fatalf("push-RMA diff %g", d)
	}
	pull, err := PRPullRMA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(pull.Values, want); d > tol {
		t.Fatalf("pull-RMA diff %g", d)
	}
	msg, err := PRMsgPassing(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(msg.Values, want); d > tol {
		t.Fatalf("msg-passing diff %g", d)
	}
}

// The Figure 3 a–d shape: Msg-Passing ≫ RMA variants for PR; pushing-RMA
// is the slowest (float accumulate locking protocol).
func TestPRSimTimeShape(t *testing.T) {
	g := testGraph(t)
	cfg := PRConfig{Ranks: 8, Iterations: 3}
	push, err := PRPushRMA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := PRPullRMA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := PRMsgPassing(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(msg.SimTime < pull.SimTime && pull.SimTime < push.SimTime) {
		t.Fatalf("simulated times: msg=%.0f pull=%.0f push=%.0f, want msg < pull < push",
			msg.SimTime, pull.SimTime, push.SimTime)
	}
	if push.SimTime < 5*msg.SimTime {
		t.Fatalf("push-RMA %.0f not ≫ msg-passing %.0f (paper: >10x)",
			push.SimTime, msg.SimTime)
	}
}

func TestPRCounterShapes(t *testing.T) {
	g := testGraph(t)
	cfg := PRConfig{Ranks: 4, Iterations: 2}
	push, _ := PRPushRMA(g, cfg)
	pull, _ := PRPullRMA(g, cfg)
	msg, _ := PRMsgPassing(g, cfg)

	if push.Report.Get(counters.RemoteAtomics) == 0 {
		t.Fatal("push-RMA issued no remote atomics")
	}
	if pull.Report.Get(counters.RemoteAtomics) != 0 {
		t.Fatal("pull-RMA issued remote atomics")
	}
	if pull.Report.Get(counters.RemoteReads) == 0 {
		t.Fatal("pull-RMA issued no remote reads")
	}
	if msg.Report.Get(counters.Collectives) == 0 {
		t.Fatal("msg-passing issued no collectives")
	}
	if msg.Report.Get(counters.RemoteAtomics) != 0 {
		t.Fatal("msg-passing issued remote atomics")
	}
}

func TestPRStrongScalingImproves(t *testing.T) {
	g := testGraph(t)
	t2, err := PRMsgPassing(g, PRConfig{Ranks: 2, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	t8, err := PRMsgPassing(g, PRConfig{Ranks: 8, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if t8.SimTime >= t2.SimTime {
		t.Fatalf("no strong scaling: P=2 %.0f vs P=8 %.0f", t2.SimTime, t8.SimTime)
	}
}

func TestTCVariantsMatchSharedMemory(t *testing.T) {
	g := testGraph(t)
	want, _ := tc.Pull(g, tc.Options{})
	cfg := TCConfig{Ranks: 4}

	push, err := TCPushRMA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualCounts(push.Counts, want) {
		t.Fatal("push-RMA counts differ")
	}
	pull, err := TCPullRMA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualCounts(pull.Counts, want) {
		t.Fatal("pull-RMA counts differ")
	}
	msg, err := TCMsgPassing(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualCounts(msg.Counts, want) {
		t.Fatal("msg-passing counts differ")
	}
}

// The Figure 3 e–f shape: RMA beats MP for TC; pulling beats pushing.
func TestTCSimTimeShape(t *testing.T) {
	g := testGraph(t)
	cfg := TCConfig{Ranks: 8}
	push, err := TCPushRMA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pull, err := TCPullRMA(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := TCMsgPassing(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(pull.SimTime <= push.SimTime && push.SimTime < msg.SimTime) {
		t.Fatalf("simulated times: pull=%.0f push=%.0f msg=%.0f, want pull ≤ push < msg",
			pull.SimTime, push.SimTime, msg.SimTime)
	}
}

func TestTCCounterShapes(t *testing.T) {
	g := testGraph(t)
	cfg := TCConfig{Ranks: 4}
	push, _ := TCPushRMA(g, cfg)
	pull, _ := TCPullRMA(g, cfg)
	msg, _ := TCMsgPassing(g, cfg)

	if push.Report.Get(counters.RemoteAtomics) == 0 {
		t.Fatal("push-RMA issued no FAAs")
	}
	if pull.Report.Get(counters.RemoteAtomics) != 0 || pull.Report.Get(counters.Messages) != 0 {
		t.Fatal("pull-RMA communicated")
	}
	if msg.Report.Get(counters.Messages) == 0 {
		t.Fatal("msg-passing sent no messages")
	}
}

func TestValidation(t *testing.T) {
	g := gen.Ring(4)
	if _, err := PRPushRMA(g, PRConfig{Ranks: 10}); err == nil {
		t.Fatal("more ranks than vertices accepted")
	}
	if _, err := TCPushRMA(g, TCConfig{Ranks: 10}); err == nil {
		t.Fatal("more ranks than vertices accepted")
	}
}

func TestSingleRankDegenerate(t *testing.T) {
	g := gen.Ring(16)
	want := smPR(g, 5)
	res, err := PRPushRMA(g, PRConfig{Ranks: 1, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(res.Values, want); d > tol {
		t.Fatalf("single rank diff %g", d)
	}
	// No remote traffic with one rank.
	if res.Report.Get(counters.RemoteAtomics) != 0 {
		t.Fatal("single rank issued remote atomics")
	}
}

func BenchmarkPRMsgPassing(b *testing.B) {
	g := testGraph(b)
	cfg := PRConfig{Ranks: 8, Iterations: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PRMsgPassing(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPullRMA(b *testing.B) {
	g := testGraph(b)
	cfg := TCConfig{Ranks: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TCPullRMA(g, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPRMemoryEstimates(t *testing.T) {
	g := testGraph(t)
	ests := PRMemory(g, 8)
	if len(ests) != 4 {
		t.Fatalf("%d estimates", len(ests))
	}
	byName := map[string]MemEstimate{}
	for _, e := range ests {
		if e.Bytes < 0 || e.Formula == "" {
			t.Fatalf("bad estimate %+v", e)
		}
		byName[e.Variant] = e
	}
	// §6.3.1: RMA variants O(1); MP may need orders of magnitude more.
	if byName["Msg-Passing"].Bytes <= 100*byName["Pushing-RMA"].Bytes {
		t.Fatalf("MP buffer %d not ≫ RMA %d",
			byName["Msg-Passing"].Bytes, byName["Pushing-RMA"].Bytes)
	}
	if byName["Pushing-RMA"].String() == "" {
		t.Fatal("empty format")
	}
	// Degenerate rank counts must not divide by zero.
	if got := PRMemory(g, 0); len(got) != 4 {
		t.Fatal("p=0 estimate failed")
	}
}

func TestTCMemoryEstimates(t *testing.T) {
	g := testGraph(t)
	ests := TCMemory(g, 8, 0) // default threshold
	if len(ests) != 3 {
		t.Fatalf("%d estimates", len(ests))
	}
	// §6.3.2: the bulk-get extreme needs the most per-fetch staging, the
	// per-neighbor extreme the least.
	if ests[0].Bytes <= ests[1].Bytes {
		t.Fatalf("bulk %d not > per-get %d", ests[0].Bytes, ests[1].Bytes)
	}
}
