package dalgo

import (
	"fmt"

	"pushpull/internal/graph"
)

// The paper's §6.3 "Memory Consumption" analysis, made executable: the
// per-process auxiliary storage (beyond the adjacency structure) each
// distributed variant needs, in bytes. These close the PR and TC
// discussions — RMA PageRank needs O(1) extra memory while Msg-Passing may
// buffer up to O(n·d̂/P); RMA TC trades one bulk get (O(d̂) staging) against
// per-neighbor gets (O(1) staging, more messages).

// MemEstimate is one variant's per-process auxiliary footprint.
type MemEstimate struct {
	Variant string
	Bytes   int64
	Formula string
}

// String formats the estimate.
func (m MemEstimate) String() string {
	return fmt.Sprintf("%-14s %12d B  (%s)", m.Variant, m.Bytes, m.Formula)
}

// PRMemory returns the §6.3.1 per-process estimates for distributed
// PageRank over p ranks.
func PRMemory(g *graph.CSR, p int) []MemEstimate {
	if p < 1 {
		p = 1
	}
	n := int64(g.N())
	segment := (n + int64(p) - 1) / int64(p)
	// MP buffers one (index, value) pair per distinct update target; the
	// worst case is every neighbor of the rank's vertices: min(2m, n·d̂)/P.
	worstPairs := g.M() / int64(p)
	if worstPairs > n {
		worstPairs = n
	}
	return []MemEstimate{
		{"Pushing-RMA", 2 * 8, "O(1): window handles only"},
		{"Pulling-RMA", 3 * 8, "O(1): window handles only"},
		{"Msg-Passing", worstPairs * 12, "O(min(2m, n·d̂)/P) send/recv pairs"},
		{"(window segs)", segment * 8 * 2, "pr + next segments, all variants"},
	}
}

// TCMemory returns the §6.3.2 per-process estimates for distributed
// triangle counting: the two RMA extremes for fetching neighbor lists plus
// the MP update buffer.
func TCMemory(g *graph.CSR, p int, flushThreshold int) []MemEstimate {
	if p < 1 {
		p = 1
	}
	if flushThreshold <= 0 {
		flushThreshold = 4096
	}
	dhat := g.MaxDegree()
	return []MemEstimate{
		{"RMA bulk-get", dhat * 8, "O(d̂): one get fetches all of N(v)"},
		{"RMA per-get", 8, "O(1): one neighbor per get, most messages"},
		{"Msg-Passing", int64(flushThreshold) * 8 * int64(p), "flush buffers × P destinations"},
	}
}
