// Package dalgo implements the distributed-memory PageRank and Triangle
// Counting variants of the paper's §6.3 on the simulated cluster:
//
//	PageRank: push-RMA (remote float accumulates — the costly locking
//	protocol), pull-RMA (remote gets of both the neighbor's rank and its
//	degree), and the Msg-Passing hybrid that aggregates updates locally
//	and exchanges them with one Alltoallv per iteration (each process both
//	pushes its update vector and pulls the incoming ones, §6.3.1).
//
//	Triangle Counting: push-RMA (one integer FAA per adjacency hit — the
//	fast path), pull-RMA (purely local accumulation), and Msg-Passing
//	(buffered "increment counter x" instruct messages, §6.3.2).
//
// The graph structure is replicated on every rank (the usual practice for
// 1D-partitioned implementations at these scales; DESIGN.md documents the
// substitution); the *algorithm state* — rank vectors, counters — is
// distributed in windows or owned segments, so all communication the paper
// charges is performed and costed.
package dalgo

import (
	"fmt"
	"math"

	"pushpull/internal/counters"
	"pushpull/internal/dm"
	"pushpull/internal/dm/mp"
	"pushpull/internal/dm/rma"
	"pushpull/internal/graph"
)

// DefaultPRIterations is the power-iteration count L used when a PRConfig
// leaves Iterations unset; callers reporting iteration counts (the facade's
// Report) reference it instead of duplicating the number.
const DefaultPRIterations = 20

// PRConfig configures a distributed PageRank run.
type PRConfig struct {
	Ranks      int     // cluster size P
	Iterations int     // L (default DefaultPRIterations)
	Damping    float64 // f (default 0.85)
	Cost       dm.CostModel
}

func (c *PRConfig) defaults() {
	if c.Iterations <= 0 {
		c.Iterations = DefaultPRIterations
	}
	if c.Damping == 0 {
		c.Damping = 0.85
	}
	if c.Cost == (dm.CostModel{}) {
		c.Cost = dm.AriesCostModel()
	}
	if c.Ranks < 1 {
		c.Ranks = 1
	}
}

// Result carries distributed-run output: the gathered global state, the
// simulated makespan in nanoseconds, and the aggregated counters.
type Result struct {
	Values  []float64 // PR: ranks; TC: counts as floats for uniformity
	Counts  []int64   // TC only
	SimTime float64
	Report  counters.Report
}

// segSizes returns the 1D block decomposition sizes for n over p ranks.
func segSizes(n, p int) []int {
	out := make([]int, p)
	for w := 0; w < p; w++ {
		lo, hi := dm.Range(n, p, w)
		out[w] = hi - lo
	}
	return out
}

// PRPushRMA runs push-based PageRank over RMA: every edge contribution is
// an MPI_Accumulate-style remote float atomic into the owner's window.
func PRPushRMA(g *graph.CSR, cfg PRConfig) (*Result, error) {
	if err := validatePR(g, &cfg); err != nil {
		return nil, err
	}
	n := g.N()
	cluster, err := dm.NewCluster(cfg.Ranks, cfg.Cost)
	if err != nil {
		return nil, err
	}
	prWin, err := rma.NewFloatWin(cluster, segSizes(n, cfg.Ranks))
	if err != nil {
		return nil, err
	}
	nextWin, err := rma.NewFloatWin(cluster, segSizes(n, cfg.Ranks))
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	base := (1 - cfg.Damping) / float64(n)
	runErr := cluster.Run(func(r *dm.Rank) {
		lo, hi := dm.Range(n, cfg.Ranks, r.ID)
		cur, nxt := prWin, nextWin
		cur.FillLocal(r, 1/float64(n))
		cluster.Barrier(r)
		for l := 0; l < cfg.Iterations; l++ {
			nxt.FillLocal(r, base)
			cluster.Barrier(r)
			for vi := lo; vi < hi; vi++ {
				v := graph.V(vi)
				d := g.Degree(v)
				r.ChargeOps(1)
				if d == 0 {
					continue
				}
				c := cfg.Damping * cur.Get(r, r.ID, vi-lo) / float64(d)
				for _, u := range g.Neighbors(v) {
					tgt := r.Owner(n, int(u))
					tlo, _ := dm.Range(n, cfg.Ranks, tgt)
					nxt.Accumulate(r, tgt, int(u)-tlo, c)
				}
			}
			for t := 0; t < cfg.Ranks; t++ {
				nxt.Flush(r, t)
			}
			cluster.Barrier(r)
			cur, nxt = nxt, cur
		}
		seg := cur.Local(r)
		copy(out[lo:hi], seg)
	})
	if runErr != nil {
		return nil, runErr
	}
	return &Result{Values: out, SimTime: cluster.SimTime(), Report: cluster.Report()}, nil
}

// PRPullRMA runs pull-based PageRank over RMA: for every neighbor, the rank
// fetches both the neighbor's current rank and its degree with remote gets
// (the communication overhead §6.3.1 attributes to pulling).
func PRPullRMA(g *graph.CSR, cfg PRConfig) (*Result, error) {
	if err := validatePR(g, &cfg); err != nil {
		return nil, err
	}
	n := g.N()
	cluster, err := dm.NewCluster(cfg.Ranks, cfg.Cost)
	if err != nil {
		return nil, err
	}
	prWin, err := rma.NewFloatWin(cluster, segSizes(n, cfg.Ranks))
	if err != nil {
		return nil, err
	}
	nextWin, err := rma.NewFloatWin(cluster, segSizes(n, cfg.Ranks))
	if err != nil {
		return nil, err
	}
	degWin, err := rma.NewIntWin(cluster, segSizes(n, cfg.Ranks))
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	base := (1 - cfg.Damping) / float64(n)
	runErr := cluster.Run(func(r *dm.Rank) {
		lo, hi := dm.Range(n, cfg.Ranks, r.ID)
		for vi := lo; vi < hi; vi++ {
			degWin.Put(r, r.ID, vi-lo, g.Degree(graph.V(vi)))
		}
		cur, nxt := prWin, nextWin
		cur.FillLocal(r, 1/float64(n))
		cluster.Barrier(r)
		for l := 0; l < cfg.Iterations; l++ {
			for vi := lo; vi < hi; vi++ {
				v := graph.V(vi)
				sum := 0.0
				for _, u := range g.Neighbors(v) {
					tgt := r.Owner(n, int(u))
					tlo, _ := dm.Range(n, cfg.Ranks, tgt)
					du := degWin.Get(r, tgt, int(u)-tlo) // fetch degree …
					if du == 0 {
						continue
					}
					pu := cur.Get(r, tgt, int(u)-tlo) // … and rank (§6.3.1)
					sum += pu / float64(du)
				}
				nxt.Put(r, r.ID, vi-lo, base+cfg.Damping*sum)
			}
			cluster.Barrier(r)
			cur, nxt = nxt, cur
		}
		seg := cur.Local(r)
		copy(out[lo:hi], seg)
	})
	if runErr != nil {
		return nil, runErr
	}
	return &Result{Values: out, SimTime: cluster.SimTime(), Report: cluster.Report()}, nil
}

// PRMsgPassing runs the Alltoallv hybrid of §6.3.1: each rank accumulates
// its outgoing contributions locally (combining per target vertex), pushes
// one update vector per destination through the collective, and pulls the
// incoming vectors into its own segment.
func PRMsgPassing(g *graph.CSR, cfg PRConfig) (*Result, error) {
	if err := validatePR(g, &cfg); err != nil {
		return nil, err
	}
	n := g.N()
	cluster, err := dm.NewCluster(cfg.Ranks, cfg.Cost)
	if err != nil {
		return nil, err
	}
	comm := mp.New(cluster, 16)
	out := make([]float64, n)
	base := (1 - cfg.Damping) / float64(n)
	pr := make([]float64, n) // replicated view, refreshed per iteration
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	next := make([][]float64, cfg.Ranks) // per-rank owned segments
	runErr := cluster.Run(func(r *dm.Rank) {
		lo, hi := dm.Range(n, cfg.Ranks, r.ID)
		next[r.ID] = make([]float64, hi-lo)
		scratch := make([]float64, n)
		cost := cluster.Cost
		for l := 0; l < cfg.Iterations; l++ {
			// Local combining phase: pure compute, no synchronization.
			for i := range scratch {
				scratch[i] = 0
			}
			r.ChargeOps(n / cluster.P) // amortized reset cost
			for vi := lo; vi < hi; vi++ {
				v := graph.V(vi)
				d := g.Degree(v)
				if d == 0 {
					continue
				}
				c := cfg.Damping * pr[vi] / float64(d)
				for _, u := range g.Neighbors(v) {
					scratch[u] += c
				}
				r.ChargeOps(int(d))
			}
			// Pack one sparse update vector per destination rank.
			send := make([][]byte, cluster.P)
			for dst := 0; dst < cluster.P; dst++ {
				dlo, dhi := dm.Range(n, cfg.Ranks, dst)
				var idx []int32
				var val []float64
				for i := dlo; i < dhi; i++ {
					if scratch[i] != 0 {
						idx = append(idx, int32(i-dlo))
						val = append(val, scratch[i])
					}
				}
				send[dst] = mp.EncodePairs(idx, val)
				r.Charge(cost.PackCost * float64(len(idx)))
			}
			recv, err := comm.Alltoallv(r, send)
			if err != nil {
				panic(err)
			}
			// Apply incoming updates to the owned segment.
			seg := next[r.ID]
			for i := range seg {
				seg[i] = base
			}
			for _, buf := range recv {
				idx, val, err := mp.DecodePairs(buf)
				if err != nil {
					panic(err)
				}
				for i := range idx {
					seg[idx[i]] += val[i]
				}
				r.Charge(cost.UnpackCost * float64(len(idx)))
			}
			// Commit the owned segment; contributions only ever read the
			// owner's own range, so no replication refresh is needed.
			copy(pr[lo:hi], seg)
			cluster.Barrier(r)
		}
		copy(out[lo:hi], pr[lo:hi])
	})
	if runErr != nil {
		return nil, runErr
	}
	return &Result{Values: out, SimTime: cluster.SimTime(), Report: cluster.Report()}, nil
}

// MaxDiff returns the largest absolute element difference.
func MaxDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

// validatePR guards against misuse shared by all PR variants.
func validatePR(g *graph.CSR, cfg *PRConfig) error {
	cfg.defaults()
	if g.N() > 0 && cfg.Ranks > g.N() {
		return fmt.Errorf("dalgo: %d ranks for %d vertices", cfg.Ranks, g.N())
	}
	return nil
}
