package dalgo

import (
	"fmt"

	"pushpull/internal/counters"
	"pushpull/internal/dm"
	"pushpull/internal/dm/mp"
	"pushpull/internal/dm/rma"
	"pushpull/internal/graph"
)

// TCConfig configures a distributed triangle-counting run.
type TCConfig struct {
	Ranks int
	Cost  dm.CostModel
	// FlushThreshold is the Msg-Passing update-buffer size per destination
	// before a flush (the paper buffers updates "until a given size is
	// reached", §6.3.2). Default 4096.
	FlushThreshold int
}

func (c *TCConfig) defaults() {
	if c.Cost == (dm.CostModel{}) {
		c.Cost = dm.AriesCostModel()
	}
	if c.Ranks < 1 {
		c.Ranks = 1
	}
	if c.FlushThreshold <= 0 {
		c.FlushThreshold = 4096
	}
}

func validateTC(g *graph.CSR, cfg *TCConfig) error {
	cfg.defaults()
	if g.N() > 0 && cfg.Ranks > g.N() {
		return fmt.Errorf("dalgo: %d ranks for %d vertices", cfg.Ranks, g.N())
	}
	return nil
}

// intersectCount returns |a ∩ b| for sorted adjacency slices.
func intersectCount(a, b []graph.V) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// chargeIntersection charges the compute cost of one merge intersection —
// identical across all three variants so their differences are purely the
// communication mechanism, as in §6.3.2.
func chargeIntersection(r *dm.Rank, a, b []graph.V) {
	r.ChargeOps(len(a) + len(b))
}

// TCPushRMA counts triangles with remote integer fetch-and-adds: one FAA
// per adjacency hit into the owner's counter window (the fast-path atomics
// of §6.3.2).
func TCPushRMA(g *graph.CSR, cfg TCConfig) (*Result, error) {
	if err := validateTC(g, &cfg); err != nil {
		return nil, err
	}
	n := g.N()
	cluster, err := dm.NewCluster(cfg.Ranks, cfg.Cost)
	if err != nil {
		return nil, err
	}
	tcWin, err := rma.NewIntWin(cluster, segSizes(n, cfg.Ranks))
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	runErr := cluster.Run(func(r *dm.Rank) {
		lo, hi := dm.Range(n, cfg.Ranks, r.ID)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			adj := g.Neighbors(v)
			for _, w1 := range adj {
				nb := g.Neighbors(w1)
				chargeIntersection(r, adj, nb)
				hits := intersectCount(adj, nb)
				tgt := r.Owner(n, int(w1))
				tlo, _ := dm.Range(n, cfg.Ranks, tgt)
				for h := 0; h < hits; h++ {
					tcWin.FAA(r, tgt, int(w1)-tlo, 1)
				}
			}
		}
		for t := 0; t < cfg.Ranks; t++ {
			tcWin.Flush(r, t)
		}
		cluster.Barrier(r)
		seg := tcWin.Local(r)
		for i, c := range seg {
			out[lo+i] = c / 2
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return &Result{Counts: out, SimTime: cluster.SimTime(), Report: cluster.Report()}, nil
}

// TCPullRMA counts triangles with purely local accumulation: each rank
// increments only counters it owns (tc[v] for its own v), so after the
// shared intersection work there is no remote traffic at all — why pulling
// is always fastest in Figure 3 e–f.
func TCPullRMA(g *graph.CSR, cfg TCConfig) (*Result, error) {
	if err := validateTC(g, &cfg); err != nil {
		return nil, err
	}
	n := g.N()
	cluster, err := dm.NewCluster(cfg.Ranks, cfg.Cost)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	runErr := cluster.Run(func(r *dm.Rank) {
		lo, hi := dm.Range(n, cfg.Ranks, r.ID)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			adj := g.Neighbors(v)
			var local int64
			for _, w1 := range adj {
				nb := g.Neighbors(w1)
				chargeIntersection(r, adj, nb)
				local += int64(intersectCount(adj, nb))
			}
			r.ChargeOps(1)
			out[vi] = local / 2 // owner-only write
		}
		cluster.Barrier(r)
	})
	if runErr != nil {
		return nil, runErr
	}
	return &Result{Counts: out, SimTime: cluster.SimTime(), Report: cluster.Report()}, nil
}

// TCMsgPassing counts triangles with buffered instruct messages: hits are
// packed into per-destination buffers and flushed with point-to-point
// sends once the buffer reaches the threshold; receivers apply the
// increments. Packing and applying cost more per update than the
// NIC-offloaded FAA fast path, which is why MP is the slowest TC variant
// (§6.3.2).
func TCMsgPassing(g *graph.CSR, cfg TCConfig) (*Result, error) {
	if err := validateTC(g, &cfg); err != nil {
		return nil, err
	}
	n := g.N()
	cluster, err := dm.NewCluster(cfg.Ranks, cfg.Cost)
	if err != nil {
		return nil, err
	}
	comm := mp.New(cluster, 16)
	out := make([]int64, n)
	counts := make([][]int64, cfg.Ranks)
	runErr := cluster.Run(func(r *dm.Rank) {
		p := cluster.P
		cost := cluster.Cost
		lo, hi := dm.Range(n, cfg.Ranks, r.ID)
		counts[r.ID] = make([]int64, hi-lo)
		// Per-destination update buffers: vertex index + count. Updates
		// are packed as they are produced (the buffering overhead §6.3.2
		// blames); each FlushThreshold-sized chunk is one wire message.
		bufIdx := make([][]int32, p)
		bufCnt := make([][]int32, p)
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			adj := g.Neighbors(v)
			for _, w1 := range adj {
				nb := g.Neighbors(w1)
				chargeIntersection(r, adj, nb)
				hits := intersectCount(adj, nb)
				if hits == 0 {
					continue
				}
				tgt := r.Owner(n, int(w1))
				tlo, _ := dm.Range(n, cfg.Ranks, tgt)
				// One instruct message entry per increment — the paper's
				// MP TC messages "instruct which counters are augmented",
				// so each hit is staged individually.
				for h := 0; h < hits; h++ {
					bufIdx[tgt] = append(bufIdx[tgt], int32(int(w1)-tlo))
					bufCnt[tgt] = append(bufCnt[tgt], 1)
					r.Charge(cost.PackCost)
				}
			}
		}
		// Exchange all buffers; charge the extra per-chunk message
		// overheads the threshold-triggered flushes would have paid.
		send := make([][]byte, p)
		for dst := 0; dst < p; dst++ {
			send[dst] = mp.EncodeCounts(bufIdx[dst], bufCnt[dst])
			if nUpd := len(bufIdx[dst]); nUpd > cfg.FlushThreshold {
				extra := (nUpd - 1) / cfg.FlushThreshold
				r.Charge(cost.MsgOverhead * float64(extra))
				r.Rec().Add(counters.Messages, int64(extra))
			}
		}
		recv, err := comm.Alltoallv(r, send)
		if err != nil {
			panic(err)
		}
		for _, buf := range recv {
			idx, cnt, err := mp.DecodeCounts(buf)
			if err != nil {
				panic(err)
			}
			r.Charge(cost.UnpackCost * float64(len(idx)))
			for i := range idx {
				counts[r.ID][idx[i]] += int64(cnt[i])
			}
		}
		cluster.Barrier(r)
		for i, c := range counts[r.ID] {
			out[lo+i] = c / 2
		}
	})
	if runErr != nil {
		return nil, runErr
	}
	return &Result{Counts: out, SimTime: cluster.SimTime(), Report: cluster.Report()}, nil
}

// EqualCounts reports exact equality of two count vectors.
func EqualCounts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
