package pram

import (
	"errors"
	"fmt"
)

// OpKind is the kind of one processor instruction.
type OpKind int

const (
	// Idle processors issue no memory access this step.
	Idle OpKind = iota
	// Load reads Mem[Addr] into the processor's accumulator.
	Load
	// Store writes Value to Mem[Addr].
	Store
	// LocalOp models local computation (no memory access).
	LocalOp
)

// Op is one processor's instruction for one lockstep cycle.
type Op struct {
	Kind  OpKind
	Addr  int
	Value int64
}

// Machine is an executable step-synchronous PRAM: P processors share a
// memory of M cells and no processor executes instruction i+1 before all
// complete instruction i (§2.1). Step enforces each model's concurrent-
// access rules and returns an error on violations — EREW rejects any
// concurrent access, CREW rejects concurrent writes, and CRCW-CB combines
// concurrent writes with the configured associative-commutative operator.
type Machine struct {
	model   Model
	mem     []int64
	combine func(a, b int64) int64
	steps   int64
	work    int64
	acc     []int64 // per-processor accumulator, filled by Load
}

// ErrAccessConflict reports a forbidden concurrent access.
var ErrAccessConflict = errors.New("pram: concurrent access violates model")

// NewMachine builds a machine with p processors and m memory cells.
// combine is required for CRCW-CB (e.g. addition or max) and ignored
// otherwise.
func NewMachine(model Model, p, m int, combine func(a, b int64) int64) (*Machine, error) {
	if p < 1 || m < 1 {
		return nil, fmt.Errorf("pram: invalid machine size P=%d M=%d", p, m)
	}
	if model == CRCWCB && combine == nil {
		return nil, errors.New("pram: CRCW-CB requires a combining operator")
	}
	return &Machine{
		model:   model,
		mem:     make([]int64, m),
		combine: combine,
		acc:     make([]int64, p),
	}, nil
}

// P returns the processor count.
func (ma *Machine) P() int { return len(ma.acc) }

// Mem returns the memory (shared view; mutate only between steps).
func (ma *Machine) Mem() []int64 { return ma.mem }

// Acc returns processor p's accumulator.
func (ma *Machine) Acc(p int) int64 { return ma.acc[p] }

// Steps returns the lockstep cycle count (PRAM time S).
func (ma *Machine) Steps() int64 { return ma.steps }

// Work returns the executed instruction count (PRAM work W).
func (ma *Machine) Work() int64 { return ma.work }

// Step executes one lockstep cycle. ops must have one entry per processor
// (Idle entries are free). All reads observe the memory state from before
// the cycle; writes commit at the end — the standard PRAM semantics that
// our shared-memory push implementations emulate with their two-sub-step
// rounds.
func (ma *Machine) Step(ops []Op) error {
	if len(ops) != len(ma.acc) {
		return fmt.Errorf("pram: %d ops for %d processors", len(ops), len(ma.acc))
	}
	readers := map[int]int{}
	type pendingWrite struct {
		value int64
		count int
	}
	writes := map[int]pendingWrite{}
	busy := false
	for p, op := range ops {
		switch op.Kind {
		case Idle:
			continue
		case LocalOp:
			ma.work++
			busy = true
		case Load:
			if err := ma.checkAddr(op.Addr); err != nil {
				return err
			}
			readers[op.Addr]++
			ma.acc[p] = ma.mem[op.Addr]
			ma.work++
			busy = true
		case Store:
			if err := ma.checkAddr(op.Addr); err != nil {
				return err
			}
			w := writes[op.Addr]
			if w.count == 0 {
				w.value = op.Value
			} else {
				// Concurrent write: only CRCW-CB may combine.
				if ma.model != CRCWCB {
					return fmt.Errorf("%w: %d concurrent writers at cell %d under %v",
						ErrAccessConflict, w.count+1, op.Addr, ma.model)
				}
				w.value = ma.combine(w.value, op.Value)
			}
			w.count++
			writes[op.Addr] = w
			ma.work++
			busy = true
		default:
			return fmt.Errorf("pram: unknown op kind %d", op.Kind)
		}
	}
	// Cross-checks between readers and writers.
	for addr, n := range readers {
		if ma.model == EREW && n > 1 {
			return fmt.Errorf("%w: %d concurrent readers at cell %d under EREW",
				ErrAccessConflict, n, addr)
		}
		if _, ok := writes[addr]; ok {
			return fmt.Errorf("%w: read and write of cell %d in one step",
				ErrAccessConflict, addr)
		}
	}
	if ma.model == EREW {
		for addr, w := range writes {
			if w.count > 1 {
				return fmt.Errorf("%w: %d concurrent writers at cell %d under EREW",
					ErrAccessConflict, w.count, addr)
			}
		}
	}
	for addr, w := range writes {
		ma.mem[addr] = w.value
	}
	if busy {
		ma.steps++
	}
	return nil
}

func (ma *Machine) checkAddr(a int) error {
	if a < 0 || a >= len(ma.mem) {
		return fmt.Errorf("pram: address %d out of memory [0,%d)", a, len(ma.mem))
	}
	return nil
}

// RunKRelaxation executes a push-style k-relaxation on the machine: the
// processors propagate the k source values into the target cells, with
// concurrent updates to one target combined (CRCW-CB) or serialized over
// multiple steps (CREW/EREW, tree-free simple serialization). It returns
// steps and work consumed, for comparison against the KRelaxation bound.
//
// sources[i] is a (cell, target) pair: the value at cell srcs[i] is
// combined into cell dsts[i].
func RunKRelaxation(ma *Machine, srcs, dsts []int) (steps, work int64, err error) {
	if len(srcs) != len(dsts) {
		return 0, 0, errors.New("pram: srcs/dsts length mismatch")
	}
	if ma.combine == nil {
		return 0, 0, errors.New("pram: k-relaxation needs a combining operator on every model")
	}
	s0, w0 := ma.steps, ma.work
	p := ma.P()
	k := len(srcs)
	// Loads: each processor loads one source per cycle.
	vals := make([]int64, k)
	for base := 0; base < k; base += p {
		ops := make([]Op, p)
		for i := 0; i < p && base+i < k; i++ {
			ops[i] = Op{Kind: Load, Addr: srcs[base+i]}
		}
		if err := ma.Step(ops); err != nil {
			return 0, 0, err
		}
		for i := 0; i < p && base+i < k; i++ {
			vals[base+i] = ma.Acc(i)
		}
	}
	switch ma.model {
	case CRCWCB:
		// All updates to one target can land in the same cycle; stage the
		// combined value with the existing cell content first.
		for base := 0; base < k; base += p {
			ops := make([]Op, p)
			for i := 0; i < p && base+i < k; i++ {
				d := dsts[base+i]
				ops[i] = Op{Kind: Store, Addr: d, Value: ma.combine(ma.mem[d], vals[base+i])}
			}
			// Concurrent stores to the same d would double-count mem[d];
			// combine it exactly once per distinct target per cycle.
			seen := map[int]bool{}
			for i := 0; i < p && base+i < k; i++ {
				d := dsts[base+i]
				if seen[d] {
					ops[i].Value = vals[base+i] // only the first carries mem[d]
				} else {
					seen[d] = true
				}
			}
			if err := ma.Step(ops); err != nil {
				return 0, 0, err
			}
		}
	default:
		// Exclusive-write models: serialize conflicting targets across
		// cycles (the simple O(conflict-degree) schedule; the merge-tree
		// schedule of §4 is asymptotically better but needs scratch cells).
		remaining := make([]int, k)
		for i := range remaining {
			remaining[i] = i
		}
		for len(remaining) > 0 {
			ops := make([]Op, p)
			used := map[int]bool{}
			var next []int
			slot := 0
			for _, i := range remaining {
				d := dsts[i]
				if used[d] || slot >= p {
					next = append(next, i)
					continue
				}
				used[d] = true
				ops[slot] = Op{Kind: Store, Addr: d, Value: ma.combine(ma.mem[d], vals[i])}
				slot++
			}
			if err := ma.Step(ops); err != nil {
				return 0, 0, err
			}
			remaining = next
		}
	}
	return ma.steps - s0, ma.work - w0, nil
}

// RunPrefixSum computes an in-place exclusive prefix sum over cells
// [0, n) using the work-efficient two-sweep schedule — the engine of the
// k-filter primitive. It returns steps and work consumed.
func RunPrefixSum(ma *Machine, n int) (steps, work int64, err error) {
	if n <= 0 || n > len(ma.mem) || n&(n-1) != 0 {
		return 0, 0, fmt.Errorf("pram: prefix sum needs a power-of-two cell count, got %d", n)
	}
	s0, w0 := ma.steps, ma.work
	p := ma.P()
	// Up-sweep.
	for stride := 1; stride < n; stride *= 2 {
		idxs := make([]int, 0, n/(2*stride)+1)
		for i := 2*stride - 1; i < n; i += 2 * stride {
			idxs = append(idxs, i)
		}
		for base := 0; base < len(idxs); base += p {
			ops := make([]Op, p)
			for j := 0; j < p && base+j < len(idxs); j++ {
				i := idxs[base+j]
				ops[j] = Op{Kind: Store, Addr: i, Value: ma.mem[i] + ma.mem[i-stride]}
			}
			if err := ma.Step(ops); err != nil {
				return 0, 0, err
			}
		}
	}
	// Clear the root and down-sweep.
	top := 1
	for top*2 <= n {
		top *= 2
	}
	if err := ma.Step(append([]Op{{Kind: Store, Addr: top - 1, Value: 0}}, make([]Op, p-1)...)); err != nil {
		return 0, 0, err
	}
	for stride := top / 2; stride >= 1; stride /= 2 {
		idxs := make([]int, 0)
		for i := 2*stride - 1; i < n; i += 2 * stride {
			idxs = append(idxs, i)
		}
		for base := 0; base < len(idxs); base += p {
			ops := make([]Op, p)
			// Two half-cycles to respect exclusive access: first move the
			// left child up, then write the sum down.
			lefts := make([]int64, p)
			for j := 0; j < p && base+j < len(idxs); j++ {
				i := idxs[base+j]
				lefts[j] = ma.mem[i-stride]
				ops[j] = Op{Kind: Store, Addr: i - stride, Value: ma.mem[i]}
			}
			if err := ma.Step(ops); err != nil {
				return 0, 0, err
			}
			ops2 := make([]Op, p)
			for j := 0; j < p && base+j < len(idxs); j++ {
				i := idxs[base+j]
				ops2[j] = Op{Kind: Store, Addr: i, Value: ma.mem[i] + lefts[j]}
			}
			if err := ma.Step(ops2); err != nil {
				return 0, 0, err
			}
		}
	}
	return ma.steps - s0, ma.work - w0, nil
}
