// Package pram reproduces the paper's theoretical analysis (§2.1, §4): the
// PRAM machine variants (EREW, CREW, Combining-CRCW), the two cost
// primitives every algorithm is built from — k-relaxation and k-filter —
// the closed-form time/work bounds of §4.1–§4.7, the simulation lemmas of
// §2.1, and an *executable* step-synchronous PRAM machine that validates
// the primitive bounds and the concurrent-access rules of each model.
package pram

import (
	"fmt"
	"math"

	"pushpull/internal/core"
)

// Model is a PRAM variant with specific concurrent-access rules.
type Model int

const (
	// EREW forbids any concurrent access to a cell.
	EREW Model = iota
	// CREW allows concurrent reads, exclusive writes.
	CREW
	// CRCWCB allows concurrent writes, combined with an associative and
	// commutative operator (the Combining CRCW of Harris [30]).
	CRCWCB
)

// String names the model.
func (m Model) String() string {
	switch m {
	case EREW:
		return "EREW"
	case CREW:
		return "CREW"
	case CRCWCB:
		return "CRCW-CB"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Cost is an asymptotic (time, work) pair; values are the Θ-expressions of
// §4 with constants 1, useful for comparing variants and validating
// monotonicity, not for wall-clock prediction.
type Cost struct {
	Time float64
	Work float64
}

// Add returns the sum of two costs (sequential composition).
func (c Cost) Add(d Cost) Cost { return Cost{c.Time + d.Time, c.Work + d.Work} }

// Scale multiplies both components by f (loop repetition).
func (c Cost) Scale(f float64) Cost { return Cost{c.Time * f, c.Work * f} }

func kbar(k, p float64) float64 { return math.Max(1, k/p) }

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

// KRelaxation is the cost of simultaneously propagating updates from/to k
// vertices to/from one of their neighbors (§4, "Cost Derivations").
// Pulling always costs O(k̄) time and O(k) work. Pushing matches that under
// CRCW-CB; under CREW the conflicting writes are resolved with incomplete
// binary merge-trees of height O(log d̂), inflating both time and work.
func KRelaxation(k, p, dhat float64, m Model, dir core.Direction) Cost {
	base := Cost{Time: kbar(k, p), Work: math.Max(k, 1)}
	if dir == core.Pull {
		return base
	}
	switch m {
	case CRCWCB:
		return base
	default: // CREW and EREW pay the merge-tree factor
		f := log2(dhat)
		return Cost{Time: base.Time * f, Work: base.Work * f}
	}
}

// KFilter is the cost of extracting the vertices updated by one or more
// k-relaxations via a prefix sum: O(log P + k̄) time and O(min(k, n)) work.
// It is only needed when pushing; pulling inspects every vertex anyway.
func KFilter(k, n, p float64) Cost {
	return Cost{Time: log2(p) + kbar(k, p), Work: math.Min(math.Max(k, 1), n)}
}

// AlgorithmParams carries the quantities the §4 bounds depend on.
type AlgorithmParams struct {
	N    float64 // vertices
	M    float64 // edges
	Dhat float64 // maximum degree d̂
	P    float64 // processors
	L    float64 // iterations (PR, BGC) or max weighted distance (SSSP)
	D    float64 // diameter (BFS, BC)
	// SSSP-specific:
	Delta  float64 // bucket width Δ
	LDelta float64 // l_Δ: inner iterations per epoch
}

// PageRank returns the §4.1 bounds: pulling O(L(m/P + d̂)) time and O(Lm)
// work; pushing the same in CRCW-CB and a log(d̂) factor more in CREW.
func PageRank(p AlgorithmParams, m Model, dir core.Direction) Cost {
	c := Cost{Time: p.M/p.P + p.Dhat, Work: p.M}
	if dir == core.Push && m != CRCWCB {
		f := log2(p.Dhat)
		c = Cost{Time: c.Time * f, Work: c.Work * f}
	}
	return c.Scale(math.Max(p.L, 1))
}

// TriangleCount returns the §4.2 bounds: O(d̂(m/P + d̂)) time and O(m·d̂)
// work pulling or pushing in CRCW-CB; a log(d̂) factor more pushing in
// CREW.
func TriangleCount(p AlgorithmParams, m Model, dir core.Direction) Cost {
	c := Cost{Time: p.Dhat * (p.M/p.P + p.Dhat), Work: p.M * p.Dhat}
	if dir == core.Push && m != CRCWCB {
		f := log2(p.Dhat)
		c = Cost{Time: c.Time * f, Work: c.Work * f}
	}
	return c
}

// BFS returns the §4.3 bounds: pulling O(D(m/P + d̂)) time and O(Dm) work;
// pushing O(m/P + D(d̂ + log P)) time and O(m) work in CRCW-CB, a log(d̂)
// factor more in CREW.
func BFS(p AlgorithmParams, m Model, dir core.Direction) Cost {
	d := math.Max(p.D, 1)
	if dir == core.Pull {
		return Cost{Time: d * (p.M/p.P + p.Dhat), Work: d * p.M}
	}
	c := Cost{Time: p.M/p.P + d*(p.Dhat+log2(p.P)), Work: p.M}
	if m != CRCWCB {
		f := log2(p.Dhat)
		c = Cost{Time: c.Time * f, Work: c.Work * f}
	}
	return c
}

// SSSPDelta returns the §4.4 bounds with E = L/Δ epochs: pulling
// O(E·l_Δ(m/P + d̂)) time and O(E·m·l_Δ) work; pushing O(m·l_Δ/P +
// E·l_Δ·d̂) time and O(m·l_Δ) work in CRCW-CB (log(d̂) more in CREW).
// Pushing is cheaper because each vertex's edges are relaxed in only one
// epoch.
func SSSPDelta(p AlgorithmParams, m Model, dir core.Direction) Cost {
	epochs := math.Max(p.L/math.Max(p.Delta, 1), 1)
	ld := math.Max(p.LDelta, 1)
	if dir == core.Pull {
		return Cost{Time: epochs * ld * (p.M/p.P + p.Dhat), Work: epochs * p.M * ld}
	}
	c := Cost{Time: p.M*ld/p.P + epochs*ld*p.Dhat, Work: p.M * ld}
	if m != CRCWCB {
		f := log2(p.Dhat)
		c = Cost{Time: c.Time * f, Work: c.Work * f}
	}
	return c
}

// BC returns the §4.5 bounds: 2n BFS invocations dominate parallel
// Brandes.
func BC(p AlgorithmParams, m Model, dir core.Direction) Cost {
	return BFS(p, m, dir).Scale(2 * p.N)
}

// BGC returns the §4.6 bounds: O(L(m/P + d̂)) time and O(Lm) work in both
// directions under CRCW-CB; a log(d̂) factor more pushing in CREW.
func BGC(p AlgorithmParams, m Model, dir core.Direction) Cost {
	c := Cost{Time: p.M/p.P + p.Dhat, Work: p.M}
	if dir == core.Push && m != CRCWCB {
		f := log2(p.Dhat)
		c = Cost{Time: c.Time * f, Work: c.Work * f}
	}
	return c.Scale(math.Max(p.L, 1))
}

// MST returns the §4.7 Borůvka bounds: O(n²/P) time and O(n²) work, a
// log(n) factor more pushing in CREW.
func MST(p AlgorithmParams, m Model, dir core.Direction) Cost {
	c := Cost{Time: p.N * p.N / p.P, Work: p.N * p.N}
	if dir == core.Push && m != CRCWCB {
		f := log2(p.N)
		c = Cost{Time: c.Time * f, Work: c.Work * f}
	}
	return c
}

// ConflictSummary mirrors §4.9: how many read/write conflicts each variant
// incurs and what synchronization resolves them.
type ConflictSummary struct {
	Algorithm      string
	WriteConflicts string // pushing
	ReadConflicts  string // pulling
	PushSync       string // atomics/locks used when pushing
	PullSync       string
}

// Summaries returns the §4.9 table for all seven algorithms.
func Summaries() []ConflictSummary {
	return []ConflictSummary{
		{"PageRank", "O(Lm) float", "O(Lm)", "O(Lm) CAS-float (no CPU float atomics)", "none"},
		{"TriangleCount", "O(m·d̂) int", "O(m·d̂)", "O(m·d̂) FAA", "none"},
		{"BFS", "O(m) int", "O(Dm)", "O(m) CAS", "none"},
		{"SSSP-Δ", "O(m·l_Δ)", "O((L/Δ)m·l_Δ)", "O(m·l_Δ) CAS", "none"},
		{"BC", "floats (phase 2)", "ints", "locks (float accumulation)", "atomics on ints"},
		{"BGC", "O(Lm) int", "O(Lm)", "O(Lm) CAS", "O(Lm) CAS"},
		{"MST", "O(n²) int", "O(n²)", "O(n²) CAS", "none"},
	}
}

// CRCWSimulationSlowdown is the §2.1 lemma: any CRCW with M cells can be
// simulated on an (M·P)-cell CREW/EREW with Θ(log n) slowdown.
func CRCWSimulationSlowdown(n float64) float64 { return log2(n) }

// LimitProcessors is the §2.1 LP lemma (Brent): a P-processor solution in
// time S runs on P′ < P processors in time S·⌈P/P′⌉.
func LimitProcessors(s float64, p, pPrime float64) float64 {
	if pPrime <= 0 {
		return math.Inf(1)
	}
	return s * math.Ceil(p/pPrime)
}
