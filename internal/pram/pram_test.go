package pram

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"pushpull/internal/core"
)

func TestModelString(t *testing.T) {
	if EREW.String() != "EREW" || CREW.String() != "CREW" || CRCWCB.String() != "CRCW-CB" {
		t.Fatal("model names wrong")
	}
	if !strings.Contains(Model(9).String(), "Model(") {
		t.Fatal("unknown model name")
	}
}

func TestKRelaxationBounds(t *testing.T) {
	// Pulling never pays the CREW factor.
	pull := KRelaxation(1000, 10, 64, CREW, core.Pull)
	pushCB := KRelaxation(1000, 10, 64, CRCWCB, core.Push)
	pushCREW := KRelaxation(1000, 10, 64, CREW, core.Push)
	if pull != pushCB {
		t.Fatalf("pull %v != push/CRCW-CB %v", pull, pushCB)
	}
	if pushCREW.Time <= pushCB.Time || pushCREW.Work <= pushCB.Work {
		t.Fatalf("CREW push %v must exceed CRCW push %v", pushCREW, pushCB)
	}
	// Time is k̄ = max(1, k/P).
	if got := KRelaxation(5, 10, 4, CRCWCB, core.Push).Time; got != 1 {
		t.Fatalf("k < P time = %v, want 1", got)
	}
}

func TestKFilter(t *testing.T) {
	c := KFilter(1000, 500, 8)
	if c.Work != 500 { // min(k, n)
		t.Fatalf("work = %v", c.Work)
	}
	if c.Time < 1000.0/8 {
		t.Fatalf("time = %v below k̄", c.Time)
	}
}

func defaultParams() AlgorithmParams {
	return AlgorithmParams{
		N: 1 << 20, M: 1 << 24, Dhat: 1 << 10, P: 64,
		L: 20, D: 12, Delta: 10, LDelta: 3,
	}
}

// The §4.9 complexity insight: for PR and TC, pulling beats pushing by a
// logarithmic factor in the CREW model but ties it under CRCW-CB.
func TestPullBeatsPushUnderCREW(t *testing.T) {
	p := defaultParams()
	type fn func(AlgorithmParams, Model, core.Direction) Cost
	for name, f := range map[string]fn{"PR": PageRank, "TC": TriangleCount, "BGC": BGC, "MST": MST} {
		pullCREW := f(p, CREW, core.Pull)
		pushCREW := f(p, CREW, core.Push)
		pushCB := f(p, CRCWCB, core.Push)
		if pushCREW.Work <= pullCREW.Work {
			t.Errorf("%s: CREW push work %v not > pull %v", name, pushCREW.Work, pullCREW.Work)
		}
		if pullCREW != pushCB {
			t.Errorf("%s: pull %v != CRCW-CB push %v", name, pullCREW, pushCB)
		}
	}
}

// Traversals flip the relation: pushing does less total work than pulling
// (§4.3, §4.4).
func TestPushBeatsPullForTraversals(t *testing.T) {
	p := defaultParams()
	if push, pull := BFS(p, CRCWCB, core.Push), BFS(p, CRCWCB, core.Pull); push.Work >= pull.Work {
		t.Fatalf("BFS push work %v not < pull %v", push.Work, pull.Work)
	}
	if push, pull := SSSPDelta(p, CRCWCB, core.Push), SSSPDelta(p, CRCWCB, core.Pull); push.Work >= pull.Work {
		t.Fatalf("SSSP push work %v not < pull %v", push.Work, pull.Work)
	}
	if push, pull := BC(p, CRCWCB, core.Push), BC(p, CRCWCB, core.Pull); push.Work >= pull.Work {
		t.Fatalf("BC push work %v not < pull %v", push.Work, pull.Work)
	}
}

// Property: cost is monotone in the processor count (more processors never
// increase time) for every algorithm bound.
func TestTimeMonotoneInP(t *testing.T) {
	f := func(pRaw uint8) bool {
		p1 := defaultParams()
		p2 := defaultParams()
		p1.P = float64(pRaw%63 + 1)
		p2.P = p1.P * 2
		for _, fn := range []func(AlgorithmParams, Model, core.Direction) Cost{
			PageRank, TriangleCount, BFS, SSSPDelta, BC, BGC, MST,
		} {
			for _, dir := range []core.Direction{core.Push, core.Pull} {
				if fn(p2, CRCWCB, dir).Time > fn(p1, CRCWCB, dir).Time+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLemmas(t *testing.T) {
	if got := CRCWSimulationSlowdown(1 << 20); math.Abs(got-20) > 1e-9 {
		t.Fatalf("slowdown = %v", got)
	}
	// LP lemma: halving processors doubles time.
	if got := LimitProcessors(100, 64, 32); got != 200 {
		t.Fatalf("LP = %v", got)
	}
	if got := LimitProcessors(100, 64, 0); !math.IsInf(got, 1) {
		t.Fatalf("LP with 0 processors = %v", got)
	}
}

func TestSummariesComplete(t *testing.T) {
	s := Summaries()
	if len(s) != 7 {
		t.Fatalf("%d summaries, want 7", len(s))
	}
	for _, row := range s {
		if row.Algorithm == "" || row.PushSync == "" || row.PullSync == "" {
			t.Fatalf("incomplete row %+v", row)
		}
	}
}

// ---- executable machine ----

func add(a, b int64) int64 { return a + b }

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(CREW, 0, 8, nil); err == nil {
		t.Fatal("P=0 accepted")
	}
	if _, err := NewMachine(CRCWCB, 2, 8, nil); err == nil {
		t.Fatal("CRCW-CB without combiner accepted")
	}
	ma, err := NewMachine(CREW, 2, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ma.Step([]Op{{Kind: Load, Addr: 99}, {}}); err == nil {
		t.Fatal("out-of-range address accepted")
	}
	if err := ma.Step([]Op{{Kind: Load, Addr: 1}}); err == nil {
		t.Fatal("wrong op count accepted")
	}
}

func TestMachineModelsEnforceRules(t *testing.T) {
	// EREW rejects concurrent reads.
	erew, _ := NewMachine(EREW, 2, 4, nil)
	err := erew.Step([]Op{{Kind: Load, Addr: 0}, {Kind: Load, Addr: 0}})
	if !errors.Is(err, ErrAccessConflict) {
		t.Fatalf("EREW concurrent read: %v", err)
	}
	// CREW allows concurrent reads, rejects concurrent writes.
	crew, _ := NewMachine(CREW, 2, 4, nil)
	if err := crew.Step([]Op{{Kind: Load, Addr: 0}, {Kind: Load, Addr: 0}}); err != nil {
		t.Fatalf("CREW concurrent read rejected: %v", err)
	}
	err = crew.Step([]Op{{Kind: Store, Addr: 0, Value: 1}, {Kind: Store, Addr: 0, Value: 2}})
	if !errors.Is(err, ErrAccessConflict) {
		t.Fatalf("CREW concurrent write: %v", err)
	}
	// Read+write of one cell in one step is forbidden everywhere.
	err = crew.Step([]Op{{Kind: Load, Addr: 1}, {Kind: Store, Addr: 1, Value: 2}})
	if !errors.Is(err, ErrAccessConflict) {
		t.Fatalf("read+write same cell: %v", err)
	}
	// CRCW-CB combines concurrent writes.
	cb, _ := NewMachine(CRCWCB, 3, 4, add)
	if err := cb.Step([]Op{
		{Kind: Store, Addr: 2, Value: 5},
		{Kind: Store, Addr: 2, Value: 7},
		{Kind: Store, Addr: 2, Value: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if cb.Mem()[2] != 13 {
		t.Fatalf("combined value = %d, want 13", cb.Mem()[2])
	}
}

func TestMachineCounters(t *testing.T) {
	ma, _ := NewMachine(CREW, 2, 4, nil)
	// Idle-only step costs nothing.
	if err := ma.Step([]Op{{}, {}}); err != nil {
		t.Fatal(err)
	}
	if ma.Steps() != 0 || ma.Work() != 0 {
		t.Fatal("idle step counted")
	}
	if err := ma.Step([]Op{{Kind: Store, Addr: 0, Value: 9}, {Kind: LocalOp}}); err != nil {
		t.Fatal(err)
	}
	if ma.Steps() != 1 || ma.Work() != 2 {
		t.Fatalf("steps=%d work=%d", ma.Steps(), ma.Work())
	}
	if ma.Mem()[0] != 9 {
		t.Fatal("store lost")
	}
}

func TestRunKRelaxationCRCW(t *testing.T) {
	// k=8 updates from cells 0..7 into two targets; CRCW-CB combines them
	// within ⌈k/P⌉ store cycles.
	ma, _ := NewMachine(CRCWCB, 4, 16, add)
	for i := 0; i < 8; i++ {
		ma.Mem()[i] = int64(i + 1) // values 1..8
	}
	srcs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	dsts := []int{8, 8, 8, 8, 9, 9, 9, 9}
	steps, work, err := RunKRelaxation(ma, srcs, dsts)
	if err != nil {
		t.Fatal(err)
	}
	if ma.Mem()[8] != 1+2+3+4 || ma.Mem()[9] != 5+6+7+8 {
		t.Fatalf("targets = %d, %d", ma.Mem()[8], ma.Mem()[9])
	}
	// Bound: loads (k/P cycles) + stores (k/P cycles) = 4 steps, work 2k.
	if steps > 4 || work != 16 {
		t.Fatalf("steps=%d work=%d", steps, work)
	}
}

func TestRunKRelaxationCREWSerializes(t *testing.T) {
	// Under CREW the same conflict pattern must take more store cycles
	// (one per conflicting writer) — the mechanism behind the §4 log/d̂
	// penalty for pushing on exclusive-write machines.
	crcw, _ := NewMachine(CRCWCB, 4, 16, add)
	crew, _ := NewMachine(CREW, 4, 16, add)
	for i := 0; i < 8; i++ {
		crcw.Mem()[i] = int64(i + 1)
		crew.Mem()[i] = int64(i + 1)
	}
	srcs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	dsts := []int{8, 8, 8, 8, 8, 8, 8, 8} // all conflict
	sCB, _, err := RunKRelaxation(crcw, srcs, dsts)
	if err != nil {
		t.Fatal(err)
	}
	sCREW, _, err := RunKRelaxation(crew, srcs, dsts)
	if err != nil {
		t.Fatal(err)
	}
	if crew.Mem()[8] != 36 || crcw.Mem()[8] != 36 {
		t.Fatalf("sums: crew=%d crcw=%d", crew.Mem()[8], crcw.Mem()[8])
	}
	if sCREW <= sCB {
		t.Fatalf("CREW steps %d not > CRCW steps %d", sCREW, sCB)
	}
}

func TestRunKRelaxationErrors(t *testing.T) {
	ma, _ := NewMachine(CREW, 2, 8, nil) // no combiner
	if _, _, err := RunKRelaxation(ma, []int{0}, []int{1}); err == nil {
		t.Fatal("missing combiner accepted")
	}
	mb, _ := NewMachine(CRCWCB, 2, 8, add)
	if _, _, err := RunKRelaxation(mb, []int{0, 1}, []int{2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRunPrefixSum(t *testing.T) {
	ma, _ := NewMachine(CREW, 4, 16, nil)
	for i := 0; i < 16; i++ {
		ma.Mem()[i] = 1
	}
	steps, work, err := RunPrefixSum(ma, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Exclusive prefix sum of all-ones: mem[i] = i.
	for i := 0; i < 16; i++ {
		if ma.Mem()[i] != int64(i) {
			t.Fatalf("mem[%d] = %d, want %d", i, ma.Mem()[i], i)
		}
	}
	if steps == 0 || work == 0 {
		t.Fatal("no cost recorded")
	}
	// Work-efficiency: O(n) work, here ≤ 4n.
	if work > 64 {
		t.Fatalf("work = %d, want ≤ 64", work)
	}
}

// Property: prefix sum on the machine equals the host-computed prefix sum
// for random inputs.
func TestPrefixSumMatchesHost(t *testing.T) {
	f := func(vals [16]int8) bool {
		ma, _ := NewMachine(CREW, 4, 16, nil)
		want := make([]int64, 16)
		acc := int64(0)
		for i, v := range vals {
			ma.Mem()[i] = int64(v)
			want[i] = acc
			acc += int64(v)
		}
		if _, _, err := RunPrefixSum(ma, 16); err != nil {
			return false
		}
		for i := range want {
			if ma.Mem()[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSumValidation(t *testing.T) {
	ma, _ := NewMachine(CREW, 2, 16, nil)
	if _, _, err := RunPrefixSum(ma, 12); err == nil {
		t.Fatal("non-power-of-two accepted")
	}
	if _, _, err := RunPrefixSum(ma, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func BenchmarkMachineStep(b *testing.B) {
	ma, _ := NewMachine(CRCWCB, 8, 1024, add)
	ops := make([]Op, 8)
	for i := range ops {
		ops[i] = Op{Kind: Store, Addr: i, Value: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ma.Step(ops); err != nil {
			b.Fatal(err)
		}
	}
}
