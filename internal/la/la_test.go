package la

import (
	"math"
	"testing"
	"testing/quick"

	"pushpull/internal/algo/bfs"
	"pushpull/internal/algo/pr"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/core"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
)

const tol = 1e-9

func TestSemiringLaws(t *testing.T) {
	rings := []Semiring{Arithmetic(), MinPlus(), BoolOrAnd()}
	domain := map[string][]float64{
		"arithmetic": {0, 1, 2.5, -3},
		"min-plus":   {0, 1, 2.5, -3, math.Inf(1)},
		"bool":       {0, 1}, // boolean semiring is only defined on bits
	}
	for _, s := range rings {
		vals := domain[s.Name]
		for _, a := range vals {
			// Identity laws.
			if got := s.Add(a, s.Zero); got != a && !(math.IsInf(a, 1) && math.IsInf(got, 1)) {
				t.Errorf("%s: a ⊕ 0̄ = %v, want %v", s.Name, got, a)
			}
			if s.Name != "bool" { // bool ⊗ is min over {0,1} only
				if got := s.Mul(a, s.One); got != a && !(math.IsInf(a, 1) && math.IsInf(got, 1)) {
					t.Errorf("%s: a ⊗ 1̄ = %v, want %v", s.Name, got, a)
				}
			}
			for _, b := range vals {
				// Commutativity of ⊕.
				x, y := s.Add(a, b), s.Add(b, a)
				if x != y && !(math.IsNaN(x) && math.IsNaN(y)) {
					t.Errorf("%s: ⊕ not commutative at (%v,%v)", s.Name, a, b)
				}
			}
		}
	}
}

func TestBoolSemiringOnBits(t *testing.T) {
	s := BoolOrAnd()
	if s.Add(0, 1) != 1 || s.Add(0, 0) != 0 || s.Mul(1, 1) != 1 || s.Mul(1, 0) != 0 {
		t.Fatal("boolean semiring tables wrong")
	}
}

func TestCSRvsCSCMatVec(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%17) / 3
	}
	yr := make([]float64, n)
	yc := make([]float64, n)
	s := Arithmetic()
	CSRMatVec(s, g, x, yr, 4)
	Fill(yc, s.Zero)
	CSCMatVec(s, g, x, yc, 4)
	if d := MaxDiff(yr, yc); d > tol {
		t.Fatalf("CSR vs CSC: max diff %g", d)
	}
}

func TestMatVecWeighted(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdgeW(0, 1, 2)
	b.AddEdgeW(1, 2, 3)
	g := b.MustBuild()
	s := Arithmetic()
	x := []float64{1, 10, 100}
	y := make([]float64, 3)
	CSRMatVec(s, g, x, y, 1)
	// y[0] = 2·x[1] = 20; y[1] = 2·x[0] + 3·x[2] = 302; y[2] = 3·x[1] = 30.
	if y[0] != 20 || y[1] != 302 || y[2] != 30 {
		t.Fatalf("y = %v", y)
	}
}

func TestSpMSpVMatchesDense(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	s := Arithmetic()
	// Sparse x with a handful of entries.
	sv := &SparseVec{Idx: []graph.V{1, 5, 9}, Val: []float64{2, 3, 4}}
	dense := make([]float64, n)
	for i, idx := range sv.Idx {
		dense[idx] = sv.Val[i]
	}
	want := make([]float64, n)
	CSRMatVec(s, g, dense, want, 2)
	got := make([]float64, n)
	Fill(got, s.Zero)
	touched := SpMSpVPush(s, g, sv, got, 2)
	if d := MaxDiff(got, want); d > tol {
		t.Fatalf("SpMSpV vs dense: max diff %g", d)
	}
	// touched must be exactly the nonzero outputs.
	nonzero := map[graph.V]bool{}
	for v := 0; v < n; v++ {
		if want[v] != 0 {
			nonzero[graph.V(v)] = true
		}
	}
	seen := map[graph.V]bool{}
	for _, v := range touched {
		seen[v] = true
	}
	if len(seen) != len(nonzero) {
		t.Fatalf("touched %d vertices, want %d", len(seen), len(nonzero))
	}
}

func TestPageRankLAMatchesDirect(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	want := pr.Sequential(g, pr.Options{Iterations: 10, Damping: 0.85})
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		got := PageRank(g, 10, 0.85, dir, 4)
		if d := MaxDiff(got, want); d > tol {
			t.Fatalf("%v: LA PageRank diff %g", dir, d)
		}
	}
}

func TestBFSLevelsLAMatchesDirect(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(9, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	tree, _, _ := bfs.TraverseFrom(g, 0, bfs.ForcePush, core.Options{})
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		got := BFSLevels(g, 0, dir, 4)
		for v := range got {
			if got[v] != tree.Level[v] {
				t.Fatalf("%v: level[%d] = %d, want %d", dir, v, got[v], tree.Level[v])
			}
		}
	}
}

func TestSSSPLAMatchesDijkstra(t *testing.T) {
	g, err := gen.RMAT(gen.DefaultRMAT(8, 6, 11))
	if err != nil {
		t.Fatal(err)
	}
	g = gen.WithUniformWeights(g, 1, 50, 12)
	want := sssp.Dijkstra(g, 0)
	for _, dir := range []core.Direction{core.Push, core.Pull} {
		got := SSSPBellmanFord(g, 0, dir, 4)
		if d := MaxDiff(got, want); d > tol {
			t.Fatalf("%v: LA SSSP diff %g", dir, d)
		}
	}
}

func TestEmptyGraphs(t *testing.T) {
	g := graph.NewBuilder(0).MustBuild()
	if r := PageRank(g, 5, 0.85, core.Push, 1); len(r) != 0 {
		t.Fatal("empty PR")
	}
	if l := BFSLevels(g, 0, core.Pull, 1); len(l) != 0 {
		t.Fatal("empty BFS")
	}
	if d := SSSPBellmanFord(g, 0, core.Push, 1); len(d) != 0 {
		t.Fatal("empty SSSP")
	}
}

// Property: CSR and CSC products agree over the min-plus semiring too.
func TestMatVecAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := gen.ErdosRenyi(60, 3, seed)
		if err != nil {
			return false
		}
		g = gen.WithUniformWeights(g, 1, 9, seed+1)
		n := g.N()
		s := MinPlus()
		x := make([]float64, n)
		for i := range x {
			x[i] = float64((seed+uint64(i))%23) + 1
		}
		yr := make([]float64, n)
		yc := make([]float64, n)
		for i := range yc {
			yr[i] = s.Zero
			yc[i] = s.Zero
		}
		CSRMatVec(s, g, x, yr, 3)
		CSCMatVec(s, g, x, yc, 3)
		return MaxDiff(yr, yc) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCSRMatVec(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	n := g.N()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	s := Arithmetic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CSRMatVec(s, g, x, y, 0)
	}
}

func BenchmarkCSCMatVec(b *testing.B) {
	g, _ := gen.RMAT(gen.DefaultRMAT(12, 8, 1))
	n := g.N()
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	s := Arithmetic()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Fill(y, s.Zero)
		CSCMatVec(s, g, x, y, 0)
	}
}
