package la

import (
	"math"

	"pushpull/internal/core"
	"pushpull/internal/graph"
)

// PageRank runs L power iterations in the LA formulation: r ← f·A(r/d) +
// (1−f)/n, using CSR SpMV when pulling and CSC SpMV when pushing (§7.1:
// "for SpMV, CSR (pulling) works extremely well"). Both produce the same
// ranks as the direct implementations in internal/algo/pr.
func PageRank(g *graph.CSR, L int, f float64, dir core.Direction, threads int) []float64 {
	n := g.N()
	r := make([]float64, n)
	if n == 0 {
		return r
	}
	if L <= 0 {
		L = 20
	}
	if f == 0 {
		f = 0.85
	}
	s := Arithmetic()
	for i := range r {
		r[i] = 1 / float64(n)
	}
	scaled := make([]float64, n)
	next := make([]float64, n)
	base := (1 - f) / float64(n)
	for l := 0; l < L; l++ {
		for v := graph.V(0); v < g.NumV; v++ {
			if d := g.Degree(v); d > 0 {
				scaled[v] = r[v] / float64(d)
			} else {
				scaled[v] = 0
			}
		}
		if dir == core.Pull {
			CSRMatVec(s, g, scaled, next, threads)
		} else {
			Fill(next, s.Zero)
			CSCMatVec(s, g, scaled, next, threads)
		}
		for i := range next {
			next[i] = base + f*next[i]
		}
		r, next = next, r
	}
	return r
}

// BFSLevels computes BFS levels in the LA formulation over the boolean
// semiring: the frontier is a vector x, the next frontier is A ⊗ x masked
// by unvisited vertices. Pushing uses SpMSpV (the sparse frontier skips
// all zero columns); pulling uses a dense CSR SpMV per level — exactly the
// §7.1 correspondence to top-down and bottom-up BFS.
func BFSLevels(g *graph.CSR, root graph.V, dir core.Direction, threads int) []int32 {
	n := g.N()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	if n == 0 {
		return levels
	}
	s := BoolOrAnd()
	levels[root] = 0
	y := make([]float64, n)

	if dir == core.Push {
		x := &SparseVec{Idx: []graph.V{root}, Val: []float64{1}}
		for depth := int32(1); x.Len() > 0; depth++ {
			Fill(y, s.Zero)
			reached := SpMSpVPush(s, g, x, y, threads)
			nxt := &SparseVec{}
			for _, u := range reached {
				if levels[u] < 0 {
					levels[u] = depth
					nxt.Idx = append(nxt.Idx, u)
					nxt.Val = append(nxt.Val, 1)
				}
			}
			x = nxt
		}
		return levels
	}
	// Pull: dense SpMV per level; the mask is the level array.
	x := make([]float64, n)
	x[root] = 1
	for depth := int32(1); ; depth++ {
		CSRMatVec(s, g, x, y, threads)
		Fill(x, s.Zero)
		advanced := false
		for v := 0; v < n; v++ {
			if y[v] != s.Zero && levels[v] < 0 {
				levels[v] = depth
				x[v] = 1
				advanced = true
			}
		}
		if !advanced {
			return levels
		}
	}
}

// SSSPBellmanFord iterates d ← d ⊕ (A ⊗ d) over the tropical semiring
// until fixpoint — the algebraic shortest-path computation. dir selects
// the CSR (pull) or CSC (push) product. The result matches Δ-stepping and
// Dijkstra.
func SSSPBellmanFord(g *graph.CSR, source graph.V, dir core.Direction, threads int) []float64 {
	n := g.N()
	s := MinPlus()
	d := make([]float64, n)
	for i := range d {
		d[i] = s.Zero
	}
	if n == 0 {
		return d
	}
	d[source] = 0
	y := make([]float64, n)
	for iter := 0; iter < n; iter++ {
		if dir == core.Pull {
			CSRMatVec(s, g, d, y, threads)
		} else {
			Fill(y, s.Zero)
			CSCMatVec(s, g, d, y, threads)
		}
		changed := false
		for i := range y {
			if nd := s.Add(d[i], y[i]); nd != d[i] {
				d[i] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return d
}

// MaxDiff returns the largest absolute element difference, treating paired
// infinities as equal.
func MaxDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if math.IsInf(a[i], 1) && math.IsInf(b[i], 1) {
			continue
		}
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}
