// Package la implements the linear-algebra graph abstraction of the
// paper's §7.1: graph algorithms as matrix-vector products over semirings,
// where the storage layout mirrors the push-pull dichotomy —
//
//   - CSR (rows = in-edges): y[i] combines contributions from x over row i;
//     each output element is computed independently by one thread. This IS
//     pulling: no write conflicts, but SpMSpV cannot exploit input
//     sparsity (every row is scanned).
//   - CSC (columns = out-edges): column j scatters x[j] into many y[i],
//     requiring atomics or reduction trees to combine. This IS pushing:
//     write conflicts, but a sparse input vector simply skips the zero
//     columns — the frontier exploitation of traversals.
//
// PageRank, BFS and Bellman-Ford-style SSSP are expressed over the
// arithmetic, boolean and tropical (min-plus) semirings and cross-validated
// against the direct implementations in internal/algo.
package la

import (
	"math"
	"sync/atomic"

	"pushpull/internal/atomicx"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Semiring is an algebraic structure (S, ⊕, ⊗, 0̄, 1̄) over float64.
type Semiring struct {
	Name string
	Add  func(a, b float64) float64 // ⊕: associative, commutative
	Mul  func(a, b float64) float64 // ⊗
	Zero float64                    // identity of ⊕, annihilator of ⊗
	One  float64                    // identity of ⊗
}

// Arithmetic returns the standard (+, ×, 0, 1) semiring of PageRank.
func Arithmetic() Semiring {
	return Semiring{
		Name: "arithmetic",
		Add:  func(a, b float64) float64 { return a + b },
		Mul:  func(a, b float64) float64 { return a * b },
		Zero: 0,
		One:  1,
	}
}

// MinPlus returns the tropical (min, +, +∞, 0) semiring of shortest paths.
func MinPlus() Semiring {
	return Semiring{
		Name: "min-plus",
		Add:  math.Min,
		Mul:  func(a, b float64) float64 { return a + b },
		Zero: math.Inf(1),
		One:  0,
	}
}

// BoolOrAnd returns the boolean (∨, ∧, 0, 1) semiring of reachability,
// encoded in float64 {0, 1}.
func BoolOrAnd() Semiring {
	return Semiring{
		Name: "bool",
		Add:  func(a, b float64) float64 { return math.Max(a, b) },
		Mul:  func(a, b float64) float64 { return math.Min(a, b) },
		Zero: 0,
		One:  1,
	}
}

// matVal returns the matrix entry for edge slot i of vertex v: the edge
// weight for weighted graphs, 1̄ otherwise.
func matVal(s Semiring, ws []float32, i int) float64 {
	if ws == nil {
		return s.One
	}
	return float64(ws[i])
}

// CSRMatVec computes y = A ⊗ x row by row — the pull formulation. Each
// y[i] is owned by exactly one thread; no synchronization anywhere.
func CSRMatVec(s Semiring, g *graph.CSR, x, y []float64, threads int) {
	n := g.N()
	sched.ParallelFor(n, sched.Clamp(threads, n), sched.Static, 0, func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			acc := s.Zero
			ws := g.NeighborWeights(v)
			for i, u := range g.Neighbors(v) {
				acc = s.Add(acc, s.Mul(matVal(s, ws, i), x[u]))
			}
			y[vi] = acc
		}
	})
}

// CSCMatVec computes y = A ⊗ x column by column — the push formulation.
// Concurrent combines into one y[i] are resolved with a CAS loop (the
// atomics-or-reduction-tree cost of §7.1). y must be pre-filled with
// s.Zero (use Fill) or carry prior state to combine into.
func CSCMatVec(s Semiring, g *graph.CSR, x, y []float64, threads int) {
	n := g.N()
	bits := toBits(y)
	sched.ParallelFor(n, sched.Clamp(threads, n), sched.Static, 0, func(w, lo, hi int) {
		for vi := lo; vi < hi; vi++ {
			v := graph.V(vi)
			xv := x[vi]
			if xv == s.Zero {
				continue // ⊗ annihilator: the column contributes nothing
			}
			ws := g.NeighborWeights(v)
			for i, u := range g.Neighbors(v) {
				combineAtomic(s, &bits[u], s.Mul(matVal(s, ws, i), xv))
			}
		}
	})
	fromBits(y, bits)
}

// SparseVec is a sparse vector as parallel (index, value) slices.
type SparseVec struct {
	Idx []graph.V
	Val []float64
}

// Len returns the number of stored entries.
func (sv *SparseVec) Len() int { return len(sv.Idx) }

// SpMSpVPush computes y = A ⊗ x for a sparse x using the CSC (push)
// layout: only the columns matching stored entries are visited — "simply
// ignoring columns of A that match up to zeros in x" (§7.1). It returns
// the indices whose stored values changed.
func SpMSpVPush(s Semiring, g *graph.CSR, x *SparseVec, y []float64, threads int) []graph.V {
	bits := toBits(y)
	t := sched.Clamp(threads, maxInt(x.Len(), 1))
	touched := make([][]graph.V, t)
	sched.ParallelFor(x.Len(), t, sched.Static, 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := x.Idx[i]
			xv := x.Val[i]
			if xv == s.Zero {
				continue
			}
			ws := g.NeighborWeights(v)
			for j, u := range g.Neighbors(v) {
				if combineAtomic(s, &bits[u], s.Mul(matVal(s, ws, j), xv)) {
					touched[w] = append(touched[w], u)
				}
			}
		}
	})
	fromBits(y, bits)
	var out []graph.V
	for _, tt := range touched {
		out = append(out, tt...)
	}
	return out
}

// Fill sets every element to v.
func Fill(y []float64, v float64) {
	for i := range y {
		y[i] = v
	}
}

// combineAtomic applies y ⊕= v with a CAS retry loop; it reports whether
// the stored value changed (used for frontier discovery in SpMSpV).
func combineAtomic(s Semiring, addr *uint64, v float64) bool {
	for {
		old := atomicx.LoadFloat64(addr)
		next := s.Add(old, v)
		if next == old {
			return false // no change (e.g. min-plus found no improvement)
		}
		if atomic.CompareAndSwapUint64(addr, math.Float64bits(old), math.Float64bits(next)) {
			return true
		}
	}
}

// toBits snapshots a float vector into CAS-able cells.
func toBits(y []float64) []uint64 {
	bits := make([]uint64, len(y))
	for i, v := range y {
		bits[i] = math.Float64bits(v)
	}
	return bits
}

// fromBits copies the cells back into the float vector.
func fromBits(y []float64, bits []uint64) {
	for i, b := range bits {
		y[i] = math.Float64frombits(b)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
