// Package rng provides small, fast, deterministic pseudo-random number
// generators (SplitMix64 and xoshiro256**) used by the graph generators and
// workload builders. Determinism across platforms and Go releases matters
// here: every experiment in EXPERIMENTS.md must regenerate byte-identical
// workloads from its recorded seed.
package rng

import "math"

// SplitMix64 is the 64-bit mixing generator of Steele et al.; it is used
// both directly and to seed xoshiro state.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 seeds a SplitMix64.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64 random bits.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finalizer to x; handy for hashing seeds.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256** generator: fast, 256-bit state, suitable for the
// edge-sampling loops of the Kronecker and Erdős–Rényi generators.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias negligible for n ≪ 2^64
}

// Int31n returns a uniform int32 in [0, n).
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n with non-positive n")
	}
	return int32(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Range returns a uniform float64 in [lo, hi).
func (r *Rand) Float64Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed float64 with rate 1.
func (r *Rand) Exp() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
