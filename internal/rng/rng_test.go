package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(42), NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewSplitMix64(43)
	same := 0
	a = NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds agree on %d/100 outputs", same)
	}
}

func TestNewNeverZeroState(t *testing.T) {
	// Even adversarial seeds must not produce a stuck generator.
	for _, seed := range []uint64{0, 1, ^uint64(0)} {
		r := New(seed)
		zeros := 0
		for i := 0; i < 10; i++ {
			if r.Uint64() == 0 {
				zeros++
			}
		}
		if zeros == 10 {
			t.Fatalf("seed %d produced a stuck generator", seed)
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestInt31nRange(t *testing.T) {
	r := New(2)
	for i := 0; i < 10000; i++ {
		v := r.Int31n(1000)
		if v < 0 || v >= 1000 {
			t.Fatalf("Int31n(1000) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
	for i := 0; i < 1000; i++ {
		v := r.Float64Range(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Float64Range = %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(4)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("empirical p = %v, want ≈0.25", p)
	}
}

func TestExpPositiveWithUnitMean(t *testing.T) {
	r := New(5)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatalf("Exp = %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("mean = %v, want ≈1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffle(t *testing.T) {
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r := New(9)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		seen[v] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("value %d lost in shuffle", i)
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix64(0x0123456789abcdef)
	flipped := Mix64(0x0123456789abcdef ^ 1)
	diff := base ^ flipped
	ones := 0
	for ; diff != 0; diff &= diff - 1 {
		ones++
	}
	if ones < 16 || ones > 48 {
		t.Fatalf("avalanche: %d bits flipped", ones)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
