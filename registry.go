package pushpull

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Algorithm is one engine-runnable graph computation. Implementations
// receive the resolved workload handle and option set and return a
// Report; they must honor ctx by stopping between iterations and
// returning the partial result.
//
// The built-in algorithms (pr, tc, bfs, sssp, gc, bc, mst and variants)
// register themselves at package init; external packages may Register
// additional algorithms under fresh names. Caps is validated by the
// engine before Run is invoked, so Run never sees a workload kind or
// option the declaration rejects.
type Algorithm interface {
	// Name is the registry key, lower-case and stable ("pr", "bfs", ...).
	Name() string
	// Describe summarizes the computation in one line.
	Describe() string
	// Caps declares what the algorithm needs from a workload and which
	// kinds and instrumentation modes it supports.
	Caps() Caps
	// Run executes the algorithm on w with the resolved configuration.
	Run(ctx context.Context, w *Workload, cfg *Config) (*Report, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Algorithm{}
)

// Register adds an algorithm to the engine registry. Registering a nil
// algorithm, an empty name, or a name already taken is an error.
func Register(a Algorithm) error {
	if a == nil {
		return fmt.Errorf("pushpull: Register(nil)")
	}
	name := a.Name()
	if name == "" {
		return fmt.Errorf("pushpull: algorithm has empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("pushpull: algorithm %q already registered", name)
	}
	registry[name] = a
	return nil
}

// MustRegister is Register that panics on error; used by the built-ins.
func MustRegister(a Algorithm) {
	if err := Register(a); err != nil {
		panic(err)
	}
}

// Lookup resolves a registered algorithm by name.
func Lookup(name string) (Algorithm, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	a, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("pushpull: unknown algorithm %q (registered: %v)", name, algorithmNamesLocked())
	}
	return a, nil
}

// Algorithms lists every registered algorithm name, sorted. The shared-
// memory built-ins use bare names (pr, bfs, ...); the distributed §6.3
// simulations follow the dist-<algo>-<mechanism> scheme (dist-pr-push-rma,
// dist-tc-mp, ...).
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return algorithmNamesLocked()
}

// List is a thin alias of Algorithms, kept (like the Dist* wrappers) for
// source compatibility with the PR 2 catalog name.
//
// Deprecated: use Algorithms.
func List() []string { return Algorithms() }

func algorithmNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
