package pushpull_test

// Registry tests for the §6.3 distributed simulations: the dist-* names
// must appear in List(), return uniform Reports, and reproduce the legacy
// Dist* wrapper outputs exactly (the simulation is deterministic).

import (
	"context"
	"math"
	"testing"

	"pushpull"
)

func distGraph(t testing.TB) *pushpull.Graph {
	t.Helper()
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(9, 8, 11))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestListIncludesDistAlgorithms(t *testing.T) {
	names := map[string]bool{}
	for _, n := range pushpull.List() {
		names[n] = true
	}
	for _, want := range []string{
		"dist-pr-push-rma", "dist-pr-pull-rma", "dist-pr-mp",
		"dist-tc-push-rma", "dist-tc-pull-rma", "dist-tc-mp",
	} {
		if !names[want] {
			t.Errorf("List() misses %q (have %v)", want, pushpull.List())
		}
	}
}

// TestDistPRMatchesWrappers cross-validates each dist-pr registry entry
// against the legacy wrapper: same gathered ranks, same simulated
// makespan, same remote-operation counters.
func TestDistPRMatchesWrappers(t *testing.T) {
	g := distGraph(t)
	const ranks, iters = 4, 5
	wrappers := map[string]func(*pushpull.Graph, pushpull.DistPRConfig) (*pushpull.DistResult, error){
		"dist-pr-push-rma": pushpull.DistPRPushRMA,
		"dist-pr-pull-rma": pushpull.DistPRPullRMA,
		"dist-pr-mp":       pushpull.DistPRMsgPassing,
	}
	for name, wrapper := range wrappers {
		rep := run(t, g, name, pushpull.WithRanks(ranks), pushpull.WithIterations(iters))
		want, err := wrapper(g, pushpull.DistPRConfig{Ranks: ranks, Iterations: iters})
		if err != nil {
			t.Fatal(err)
		}
		// Values are compared with a float tolerance: the RMA ranks
		// accumulate concurrently, so the addition order (not the result
		// up to rounding) varies between runs.
		if d := pushpull.MaxDiff(rep.Ranks(), want.Values); d > 1e-12 {
			t.Errorf("%s: registry ranks diverge from wrapper by %g", name, d)
		}
		// Stats.Elapsed is the makespan rounded to whole nanoseconds.
		if got := float64(rep.Stats.Elapsed); math.Abs(got-want.SimTime) > 0.5 {
			t.Errorf("%s: makespan %v ≠ wrapper %v", name, got, want.SimTime)
		}
		res, ok := rep.Result.(*pushpull.DistResult)
		if !ok {
			t.Fatalf("%s: payload is %T, want *DistResult", name, rep.Result)
		}
		if *rep.Counters != want.Report || res.Report != want.Report {
			t.Errorf("%s: counters diverge from wrapper", name)
		}
		if rep.Stats.Iterations != iters || len(rep.Directions) != iters {
			t.Errorf("%s: %d iterations, %d trace entries, want %d/%d",
				name, rep.Stats.Iterations, len(rep.Directions), iters, iters)
		}
	}
}

// TestDistTCMatchesWrappers does the same for the dist-tc entries, and
// checks the counts agree across all three mechanisms.
func TestDistTCMatchesWrappers(t *testing.T) {
	g := distGraph(t)
	const ranks = 4
	wrappers := map[string]func(*pushpull.Graph, pushpull.DistTCConfig) (*pushpull.DistResult, error){
		"dist-tc-push-rma": pushpull.DistTCPushRMA,
		"dist-tc-pull-rma": pushpull.DistTCPullRMA,
		"dist-tc-mp":       pushpull.DistTCMsgPassing,
	}
	var first []int64
	for name, wrapper := range wrappers {
		rep := run(t, g, name, pushpull.WithRanks(ranks))
		want, err := wrapper(g, pushpull.DistTCConfig{Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		if !pushpull.EqualCounts(rep.Counts(), want.Counts) {
			t.Errorf("%s: registry counts diverge from wrapper", name)
		}
		if got := float64(rep.Stats.Elapsed); math.Abs(got-want.SimTime) > 0.5 {
			t.Errorf("%s: makespan %v ≠ wrapper %v", name, got, want.SimTime)
		}
		if rep.Counters == nil {
			t.Fatalf("%s: no counters attached", name)
		}
		if first == nil {
			first = rep.Counts()
		} else if !pushpull.EqualCounts(first, rep.Counts()) {
			t.Errorf("%s: counts disagree with the other dist-tc mechanisms", name)
		}
	}
}

// TestDistOptions pins the option semantics of the dist entries: the
// mechanism fixes the direction, WithRanks sizes the cluster (falling back
// to WithThreads), and a shared-memory cross-check agrees.
func TestDistOptions(t *testing.T) {
	g := distGraph(t)
	// A pinned direction contradicting the variant name errors.
	if _, err := pushpull.Run(context.Background(), g, "dist-pr-push-rma",
		pushpull.WithDirection(pushpull.Pull)); err == nil {
		t.Error("dist-pr-push-rma accepted WithDirection(Pull)")
	}
	if _, err := pushpull.Run(context.Background(), g, "dist-tc-pull-rma",
		pushpull.WithDirection(pushpull.Push)); err == nil {
		t.Error("dist-tc-pull-rma accepted WithDirection(Push)")
	}
	if _, err := pushpull.Run(context.Background(), g, "dist-pr-mp",
		pushpull.WithDirection(pushpull.Pull)); err == nil {
		t.Error("dist-pr-mp (a hybrid) accepted a pinned direction")
	}
	// An agreeing pin is fine.
	if _, err := pushpull.Run(context.Background(), g, "dist-pr-push-rma",
		pushpull.WithDirection(pushpull.Push), pushpull.WithIterations(2)); err != nil {
		t.Errorf("dist-pr-push-rma rejected the agreeing WithDirection(Push): %v", err)
	}
	// WithThreads doubles as the rank count when WithRanks is absent.
	a := run(t, g, "dist-pr-mp", pushpull.WithRanks(4), pushpull.WithIterations(3))
	b := run(t, g, "dist-pr-mp", pushpull.WithThreads(4), pushpull.WithIterations(3))
	if float64(a.Stats.Elapsed) != float64(b.Stats.Elapsed) {
		t.Error("WithThreads(4) did not size the cluster like WithRanks(4)")
	}
	// The distributed ranks agree with the shared-memory engine.
	sm := run(t, g, "pr", pushpull.WithIterations(5))
	dm := run(t, g, "dist-pr-mp", pushpull.WithRanks(8), pushpull.WithIterations(5))
	if d := pushpull.MaxDiff(sm.Ranks(), dm.Ranks()); d > 1e-9 {
		t.Errorf("dist-pr-mp diverges from shared-memory pr by %g", d)
	}
}
