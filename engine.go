package pushpull

// The Engine: the long-lived serving object behind Run. A one-shot call
// pays the full price of its kernels every time; a production service
// amortizes — the paper's direction-derived state (in-CSR, PA splits) is
// already memoized per Workload handle, and the Engine adds the
// request-level layers on top:
//
//   - shard executors (WithShards): registered workloads are partitioned
//     across shards by content identity — partition-aware runs by the
//     identity of their PA split — and each shard owns its own bounded
//     admission queue, so a burst against one hot graph queues on that
//     graph's shard instead of head-of-line-blocking every other graph,
//   - single-flight deduplication: concurrent identical requests coalesce
//     onto the one run already executing (followers report
//     Stats.Coalesced and run nothing), and
//   - an LRU result cache keyed on (stable Workload content identity,
//     algorithm name, canonical options fingerprint), with optional
//     per-entry TTL (WithCacheTTL) and explicit invalidation wired to
//     graph mutation: re-registering a name with different content drops
//     the replaced graph's cached results.
//
// A GraphStore attached with AttachStore makes the name→Workload registry
// durable: registrations write through, deletions propagate, and a fresh
// Engine attaching the same store restores every persisted graph.
//
// pushpull.Run is a thin call on a lazily-initialized default Engine, so
// every pre-Engine call site keeps compiling and behaving identically:
// the default Engine is unbounded, uncached, un-sharded and never
// coalesces, preserving the facade's one-shot timing semantics
// (benchmarks and the paper harness must measure real kernel runs, never
// cache hits or coalesced copies). Serving layers construct their own
// Engine and opt in:
//
//	eng := pushpull.NewEngine(pushpull.WithShards(4))
//	rep1, _ := eng.Run(ctx, w, "pr", pushpull.WithIterations(20))
//	rep2, _ := eng.Run(ctx, w, "pr", pushpull.WithIterations(20))
//	// rep2.Stats.CacheHit == true; no kernel ran.

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCacheCapacity is the result-cache size (entries) of NewEngine
// when WithResultCache does not override it.
const DefaultCacheCapacity = 128

// Engine is a long-lived run scheduler: sharded bounded worker pools,
// single-flight deduplication, an LRU result cache, and a (optionally
// persistent) name→Workload registry for serving fronts. An Engine is
// safe for concurrent use; the zero value is not valid — use NewEngine
// (or the package-level Run, which uses the default Engine).
type Engine struct {
	// shards are the executors; placement is by workload content identity
	// (see shardFor). Always at least one.
	shards []*shard

	// singleFlight enables coalescing of concurrent identical requests.
	singleFlight bool
	sfMu         sync.Mutex
	inflight     map[string]*flight

	cacheMu sync.Mutex
	cache   *resultCache // nil when caching is disabled

	// mutMu serializes registry *mutations* end to end (map write +
	// store write-through), so concurrent PUT/DELETE on one name cannot
	// leave the store disagreeing with the registry. wlMu alone guards
	// the map, keeping lookups on the run path free of store I/O stalls.
	mutMu     sync.Mutex
	wlMu      sync.RWMutex
	workloads map[string]*Workload
	store     GraphStore // nil until AttachStore

	hits, misses, uncacheable atomic.Uint64
	coalesced, expired        atomic.Uint64
}

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

type engineConfig struct {
	workers      int
	cacheCap     int
	cacheTTL     time.Duration
	shards       int
	queueLimit   int
	singleFlight bool
}

// WithWorkers bounds each shard's worker pool to n concurrent runs;
// excess runs wait in that shard's admission queue (their wait is
// reported as Stats.QueueWait). With S shards the engine-wide bound is
// S×n. n ≤ 0 removes the bound. NewEngine's default is GOMAXPROCS — one
// kernel's thread pool per hardware context.
func WithWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.workers = n }
}

// WithResultCache sets the LRU result-cache capacity in entries;
// capacity ≤ 0 disables result caching entirely. NewEngine's default is
// DefaultCacheCapacity.
func WithResultCache(capacity int) EngineOption {
	return func(c *engineConfig) { c.cacheCap = capacity }
}

// WithCacheTTL bounds the lifetime of each cached result: an entry older
// than ttl is evicted on lookup and the request runs for real. ttl ≤ 0
// (the default) means entries never expire — only LRU pressure and
// explicit invalidation evict them.
func WithCacheTTL(ttl time.Duration) EngineOption {
	return func(c *engineConfig) { c.cacheTTL = ttl }
}

// WithShards partitions the Engine into n shard executors, each with its
// own admission queue (bounded per WithWorkers). Registered workloads are
// placed by content identity, partition-aware runs by the identity of
// their PA split, so one hot graph cannot head-of-line-block the rest.
// n ≤ 1 keeps the single-executor layout.
func WithShards(n int) EngineOption {
	return func(c *engineConfig) { c.shards = n }
}

// WithQueueLimit bounds each shard's admission queue to n waiting runs:
// a run arriving while all workers are busy and n runs already wait fails
// fast with ErrOverloaded instead of queueing (the rejection is counted
// in EngineStats.Rejected). n ≤ 0 — the default — queues unboundedly.
// Only meaningful on a bounded Engine (WithWorkers > 0); an unbounded
// shard never queues. This is the truthful overload signal a serving
// front needs: under sustained overload an unbounded queue grows without
// limit while every client times out, whereas a bounded one sheds load
// the moment it cannot serve it.
func WithQueueLimit(n int) EngineOption {
	return func(c *engineConfig) { c.queueLimit = n }
}

// WithSingleFlight toggles coalescing of concurrent identical requests
// (same workload content, algorithm, and cacheable options fingerprint)
// onto one underlying run. NewEngine enables it; the default Engine
// behind the package-level Run disables it so one-shot calls always
// execute for real.
func WithSingleFlight(enabled bool) EngineOption {
	return func(c *engineConfig) { c.singleFlight = enabled }
}

// NewEngine builds an Engine with one shard, a GOMAXPROCS-bounded worker
// pool, a DefaultCacheCapacity-entry result cache and single-flight
// deduplication enabled, then applies opts.
func NewEngine(opts ...EngineOption) *Engine {
	cfg := engineConfig{
		workers:      runtime.GOMAXPROCS(0),
		cacheCap:     DefaultCacheCapacity,
		shards:       1,
		singleFlight: true,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	e := &Engine{
		shards:       newShards(cfg.shards, cfg.workers, cfg.queueLimit),
		singleFlight: cfg.singleFlight,
		inflight:     map[string]*flight{},
		workloads:    map[string]*Workload{},
	}
	if cfg.cacheCap > 0 {
		e.cache = newResultCache(cfg.cacheCap, cfg.cacheTTL)
	}
	return e
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the process-wide Engine behind the package-level
// Run, initializing it on first use. It is deliberately unbounded,
// uncached, un-sharded and non-coalescing — the facade's one-shot
// semantics (every Run measures a real kernel execution) predate the
// Engine and must survive it; a serving layer wanting admission control,
// result caching or deduplication builds its own Engine with NewEngine.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() {
		defaultEngine = NewEngine(WithWorkers(0), WithResultCache(0), WithSingleFlight(false))
	})
	return defaultEngine
}

// Run executes the named algorithm on a Runnable exactly like the
// package-level Run, routed through this Engine's result cache,
// single-flight deduplication and shard admission queues.
//
// A run is served from cache when all of the following hold: the Engine
// caches (WithResultCache > 0), the caller passed a *Workload handle (a
// bare *Graph is single-use, so hashing it every call would be pure
// overhead), the options fingerprint as cacheable (no WithIterationHook,
// WithProbes, WithPartitionAwareGraph, or custom switch policy), an
// identical (workload content, algorithm, options) run completed before,
// and — when WithCacheTTL is set — that run is younger than the TTL.
// Cache hits bypass the worker pools and return a shallow copy of the
// cached Report with Stats.CacheHit set.
//
// When the same key is already executing on a single-flight Engine, the
// call coalesces: it waits for that run and returns a shallow copy of its
// Report with Stats.Coalesced set, consuming no worker slot. Failed and
// canceled leading runs are never shared — followers rerun for real.
//
// On a caching or coalescing Engine the payload slices of a cacheable
// run are shared between the run that computed them and every hit or
// follower, so ALL callers — the first (miss) included — must treat them
// as read-only. Canceled (partial) runs and failed runs are never cached.
func (e *Engine) Run(ctx context.Context, on Runnable, algorithm string, opts ...Option) (*Report, error) {
	w, err := resolveWorkload(on)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	a, err := Lookup(algorithm)
	if err != nil {
		return nil, err
	}
	cfg := &Config{}
	for _, opt := range opts {
		opt(cfg)
	}
	if err := validateOptions(cfg); err != nil {
		return nil, err
	}
	if err := validateCaps(a, w, cfg); err != nil {
		return nil, err
	}

	// The run key doubles as the cache key and the single-flight key;
	// only *Workload handles with a cacheable fingerprint get one.
	_, isHandle := on.(*Workload)
	key := ""
	if isHandle && (e.cache != nil || e.singleFlight) {
		if fp, ok := cfg.fingerprint(); ok {
			key = w.ID() + "|" + a.Name() + "|" + fp
		}
	}
	// Every request lands in exactly one of the outcome counters: hit,
	// coalesced, miss (a cacheable run that executes), or uncacheable.
	cacheable := key != "" && e.cache != nil
	if !cacheable {
		e.uncacheable.Add(1)
	} else if rep, ok, expired := e.cacheGet(key); ok {
		e.hits.Add(1)
		return cachedCopy(rep), nil
	} else if expired {
		e.expired.Add(1)
	}

	if key != "" && e.singleFlight {
		rep, err, f := e.coalesce(ctx, key)
		if f == nil {
			return rep, err // follower (Coalesced) or a late cache hit
		}
		// This call leads the flight: run, publish, wake the followers.
		if cacheable {
			e.misses.Add(1)
		}
		rep, err = e.runAdmitted(ctx, a, w, cfg, key)
		e.resolve(key, f, rep, err)
		return rep, err
	}
	if cacheable {
		e.misses.Add(1)
	}
	return e.runAdmitted(ctx, a, w, cfg, key)
}

// runAdmitted is the execution tail behind cache and single-flight: admit
// on the owning shard, execute, and cache a completed cacheable result.
func (e *Engine) runAdmitted(ctx context.Context, a Algorithm, w *Workload, cfg *Config, key string) (*Report, error) {
	sh := e.shardFor(w, cfg)
	wait, err := sh.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer sh.release()
	sh.runs.Add(1)

	rep, err := execute(ctx, a, w, cfg)
	if rep != nil {
		rep.Stats.QueueWait = wait
		if key != "" && e.cache != nil && err == nil && !rep.Stats.Canceled {
			// Store a snapshot of the struct so the miss-path caller
			// editing its Report fields cannot poison later hits. The
			// payload slices stay shared (deep-copying every result
			// shape would defeat the cache): on a caching Engine they
			// are read-only for every caller, miss and hit alike.
			snap := *rep
			e.cachePut(key, &snap)
		}
	}
	return rep, err
}

// execute is the dispatch tail shared by every Engine: capability checks
// are already done, so run the algorithm and normalize the Report.
func execute(ctx context.Context, a Algorithm, w *Workload, cfg *Config) (*Report, error) {
	rep, err := a.Run(ctx, w, cfg)
	if rep != nil {
		rep.Algorithm = a.Name()
		// Surface the cancellation only when the run actually stopped
		// early: a run that completed its final iteration just as ctx
		// fired — or an instrumented (WithProbes) run, which never
		// polls ctx — returns its complete result without error.
		if err == nil && rep.Stats.Canceled && ctx.Err() != nil {
			err = ctx.Err()
		}
	}
	return rep, err
}

// cachedCopy returns the per-request view of a cached report: a shallow
// copy flagged CacheHit, sharing the (read-only) payload of the original
// run while keeping that run's timings visible.
func cachedCopy(rep *Report) *Report {
	cp := *rep
	cp.Stats.CacheHit = true
	cp.Stats.QueueWait = 0
	return &cp
}

func (e *Engine) cacheGet(key string) (rep *Report, ok, expired bool) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	return e.cache.get(key)
}

func (e *Engine) cachePut(key string, rep *Report) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	e.cache.put(key, rep)
}

// Invalidate drops every cached result computed on w's content, returning
// how many entries were removed. RegisterWorkload calls it automatically
// when a name is overwritten with different content; callers that mutate
// graph data in place behind a handle (unsupported but possible) or
// manage bindings outside the registry invalidate explicitly.
func (e *Engine) Invalidate(w *Workload) int {
	if w == nil || e.cache == nil {
		return 0
	}
	return e.invalidateID(w.ID())
}

// invalidateID removes all cache entries keyed under a content identity.
func (e *Engine) invalidateID(id string) int {
	if e.cache == nil {
		return 0
	}
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	return e.cache.invalidate(id + "|")
}

// ShardStats is the per-shard slice of EngineStats.
type ShardStats struct {
	// Shard is the executor's index (placement is stable for a given
	// workload content and shard count).
	Shard int
	// Runs counts runs executed on this shard (cache hits and coalesced
	// followers never reach a shard).
	Runs uint64
	// QueuedRuns counts runs that waited in this shard's admission
	// queue; QueueWait is their cumulative wait.
	QueuedRuns uint64
	QueueWait  time.Duration
	// Waiting is the instantaneous admission-queue depth: runs parked on
	// this shard right now. Unlike the cumulative counters it can go to
	// zero again; serving fronts divide mean historical queue wait by it
	// to produce an honest Retry-After.
	Waiting int64
	// Rejected counts runs shed with ErrOverloaded because the queue
	// already held WithQueueLimit waiters.
	Rejected uint64
}

// EngineStats is a point-in-time snapshot of an Engine's serving
// telemetry.
type EngineStats struct {
	// CacheHits / CacheMisses count cacheable runs by outcome: a miss is
	// a cacheable run that actually executed. Together with Uncacheable
	// and Coalesced they partition all requests — a coalesced follower
	// counts only as Coalesced, never as a miss.
	CacheHits, CacheMisses uint64
	// Uncacheable counts runs that bypassed the cache (bare *Graph,
	// hooks, probes, caller-supplied PA layouts, custom policies, or a
	// cache-disabled Engine).
	Uncacheable uint64
	// Coalesced counts requests served by single-flight deduplication:
	// they joined an identical in-progress run instead of executing.
	Coalesced uint64
	// Expired counts cache lookups that found only a TTL-expired entry
	// (also counted in CacheMisses).
	Expired uint64
	// CacheEntries is the current number of cached reports.
	CacheEntries int
	// QueuedRuns counts runs that waited in any admission queue;
	// QueueWait is their cumulative wait. Waiting is the instantaneous
	// depth across all queues; Rejected counts runs shed with
	// ErrOverloaded under WithQueueLimit. All four aggregate Shards.
	QueuedRuns uint64
	QueueWait  time.Duration
	Waiting    int64
	Rejected   uint64
	// Shards breaks the execution telemetry down per shard executor.
	Shards []ShardStats
}

// Stats snapshots the Engine's cache, dedup and per-shard queue
// telemetry.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		CacheHits:   e.hits.Load(),
		CacheMisses: e.misses.Load(),
		Uncacheable: e.uncacheable.Load(),
		Coalesced:   e.coalesced.Load(),
		Expired:     e.expired.Load(),
		Shards:      make([]ShardStats, len(e.shards)),
	}
	for i, sh := range e.shards {
		ss := ShardStats{
			Shard:      i,
			Runs:       sh.runs.Load(),
			QueuedRuns: sh.queuedRuns.Load(),
			QueueWait:  time.Duration(sh.queueWaitNS.Load()),
			Waiting:    sh.waiting.Load(),
			Rejected:   sh.rejected.Load(),
		}
		s.Shards[i] = ss
		s.QueuedRuns += ss.QueuedRuns
		s.QueueWait += ss.QueueWait
		s.Waiting += ss.Waiting
		s.Rejected += ss.Rejected
	}
	if e.cache != nil {
		e.cacheMu.Lock()
		s.CacheEntries = e.cache.ll.Len()
		e.cacheMu.Unlock()
	}
	return s
}

// ---- named workloads (the serving front's graph registry) ----

// RegisterWorkload binds name to a Workload handle on this Engine,
// replacing any previous binding (PUT semantics — re-uploading a graph
// under the same name is how a serving front refreshes it). Overwriting a
// name with different content invalidates the replaced graph's cached
// results: the result cache keys on content identity, so those entries
// could never hit again and would otherwise squat in the LRU until
// evicted. With a store attached the binding is persisted write-through;
// a persistence failure is reported wrapped in ErrStore (the in-memory
// registration stands).
func (e *Engine) RegisterWorkload(name string, w *Workload) error {
	if name == "" {
		return fmt.Errorf("pushpull: RegisterWorkload with empty name")
	}
	if w == nil || (w.g == nil && !w.outOfCore) {
		return fmt.Errorf("pushpull: RegisterWorkload(%q) with nil workload", name)
	}
	id := w.ID() // outside the locks: first computation is O(n + m)
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	e.wlMu.Lock()
	old := e.workloads[name]
	e.workloads[name] = w
	st := e.store
	e.wlMu.Unlock()
	if old != nil && old.ID() != id {
		e.invalidateID(old.ID())
	}
	if st != nil {
		//pushpull:allow lockheld write-through under mutMu by design: registry, cache invalidation and store must agree in mutation order
		if err := st.Put(name, w); err != nil {
			return fmt.Errorf("%w: put %q: %v", ErrStore, name, err)
		}
		// A store may have persisted the graph in the out-of-core block
		// format (DiskStore above its block threshold). If so, swap the
		// binding to the store's reopened pure file handle: the uploaded
		// in-memory CSR becomes garbage, and every later run streams the
		// blocks instead of holding the graph resident — this is how an
		// upload larger than the memory budget stays servable.
		if oc, ok := st.(interface {
			OutOfCoreHandle(string) (*Workload, bool, error)
		}); ok && w.g != nil {
			//pushpull:allow lockheld swap-after-put under mutMu by design: the binding must not interleave with another mutation of the name
			if nw, swapped, err := oc.OutOfCoreHandle(name); err == nil && swapped {
				e.wlMu.Lock()
				e.workloads[name] = nw
				e.wlMu.Unlock()
			}
		}
	}
	return nil
}

// DropWorkload removes the binding for name, invalidates the graph's
// cached results, and deletes it from the attached store (if any). It
// reports whether the name was bound; a store failure is returned wrapped
// in ErrStore (the in-memory removal stands).
func (e *Engine) DropWorkload(name string) (bool, error) {
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	e.wlMu.Lock()
	w, ok := e.workloads[name]
	delete(e.workloads, name)
	st := e.store
	e.wlMu.Unlock()
	if !ok {
		return false, nil
	}
	e.invalidateID(w.ID())
	if st != nil {
		//pushpull:allow lockheld write-through under mutMu by design: registry, cache invalidation and store must agree in mutation order
		if err := st.Delete(name); err != nil {
			return true, fmt.Errorf("%w: delete %q: %v", ErrStore, name, err)
		}
	}
	return true, nil
}

// AttachStore wires a GraphStore behind the workload registry: every
// graph the store holds is restored into the registry now, and every
// later RegisterWorkload/DropWorkload writes through. Restored bindings
// overwrite same-named in-memory ones (the store is the durable truth),
// and restore fidelity is the store's — DiskStore round-trips everything
// but the machine-local kind (see its doc). Attach before serving
// traffic; attaching a second store replaces the first without migrating
// its contents.
func (e *Engine) AttachStore(s GraphStore) error {
	if s == nil {
		return fmt.Errorf("pushpull: AttachStore(nil)")
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	//pushpull:allow lockheld restore-on-attach holds mutMu by design: no mutation may interleave with the store's snapshot
	names, err := s.Names()
	if err != nil {
		return fmt.Errorf("%w: listing: %v", ErrStore, err)
	}
	restored := make(map[string]*Workload, len(names))
	for _, name := range names {
		//pushpull:allow lockheld restore-on-attach holds mutMu by design: no mutation may interleave with the store's snapshot
		w, err := s.Get(name)
		if err != nil {
			return fmt.Errorf("%w: restore %q: %v", ErrStore, name, err)
		}
		restored[name] = w
	}
	e.wlMu.Lock()
	for name, w := range restored {
		e.workloads[name] = w
	}
	e.store = s
	e.wlMu.Unlock()
	return nil
}

// Workload returns the handle registered under name, if any.
func (e *Engine) Workload(name string) (*Workload, bool) {
	e.wlMu.RLock()
	defer e.wlMu.RUnlock()
	w, ok := e.workloads[name]
	return w, ok
}

// WorkloadNames lists the registered workload names, sorted.
func (e *Engine) WorkloadNames() []string {
	e.wlMu.RLock()
	defer e.wlMu.RUnlock()
	names := make([]string, 0, len(e.workloads))
	for n := range e.workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---- LRU result cache ----

// resultCache is a plain LRU over completed Reports with an optional
// per-entry TTL; the Engine guards it with cacheMu (hits mutate recency,
// so even reads write).
type resultCache struct {
	capacity int
	ttl      time.Duration // ≤ 0: entries never expire
	ll       *list.List    // front = most recently used
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key    string
	rep    *Report
	stored time.Time
}

func newResultCache(capacity int, ttl time.Duration) *resultCache {
	return &resultCache{capacity: capacity, ttl: ttl, ll: list.New(), entries: map[string]*list.Element{}}
}

func (c *resultCache) get(key string) (rep *Report, ok, expired bool) {
	el, hit := c.entries[key]
	if !hit {
		return nil, false, false
	}
	ent := el.Value.(*cacheEntry)
	if c.ttl > 0 && time.Since(ent.stored) > c.ttl {
		c.remove(el)
		return nil, false, true
	}
	c.ll.MoveToFront(el)
	return ent.rep, true, false
}

func (c *resultCache) put(key string, rep *Report) {
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.rep, ent.stored = rep, time.Now()
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, rep: rep, stored: time.Now()})
	for c.ll.Len() > c.capacity {
		c.remove(c.ll.Back())
	}
}

// invalidate removes every entry whose key starts with prefix (the
// "<workload id>|" form groups all results of one graph), returning the
// number removed.
func (c *resultCache) invalidate(prefix string) int {
	removed := 0
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		if strings.HasPrefix(el.Value.(*cacheEntry).key, prefix) {
			c.remove(el)
			removed++
		}
	}
	return removed
}

func (c *resultCache) remove(el *list.Element) {
	c.ll.Remove(el)
	delete(c.entries, el.Value.(*cacheEntry).key)
}
