package pushpull

// The Engine: the long-lived serving object behind Run. A one-shot call
// pays the full price of its kernels every time; a production service
// amortizes — the paper's direction-derived state (in-CSR, PA splits) is
// already memoized per Workload handle, and the Engine adds the two
// request-level layers on top:
//
//   - a bounded worker pool with an admission queue, so a traffic burst
//     degrades into queue wait (reported per run as Stats.QueueWait)
//     instead of oversubscribing the kernels' own thread pools, and
//   - an LRU result cache keyed on (stable Workload content identity,
//     algorithm name, canonical options fingerprint), so an identical
//     request is answered without running anything (Stats.CacheHit).
//
// pushpull.Run is a thin call on a lazily-initialized default Engine, so
// every pre-Engine call site keeps compiling and behaving identically:
// the default Engine is unbounded and uncached, preserving the facade's
// one-shot timing semantics (benchmarks and the paper harness must
// measure real kernel runs, never cache hits). Serving layers construct
// their own Engine and opt in:
//
//	eng := pushpull.NewEngine() // GOMAXPROCS workers, 128-entry cache
//	rep1, _ := eng.Run(ctx, w, "pr", pushpull.WithIterations(20))
//	rep2, _ := eng.Run(ctx, w, "pr", pushpull.WithIterations(20))
//	// rep2.Stats.CacheHit == true; no kernel ran.

import (
	"container/list"
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCacheCapacity is the result-cache size (entries) of NewEngine
// when WithResultCache does not override it.
const DefaultCacheCapacity = 128

// Engine is a long-lived run scheduler: a bounded worker pool, an LRU
// result cache, and a name→Workload registry for serving fronts. An
// Engine is safe for concurrent use; the zero value is not valid — use
// NewEngine (or the package-level Run, which uses the default Engine).
type Engine struct {
	// sem is the worker-pool semaphore; nil means unbounded admission.
	sem chan struct{}

	cacheMu sync.Mutex
	cache   *resultCache // nil when caching is disabled

	wlMu      sync.RWMutex
	workloads map[string]*Workload

	hits, misses, uncacheable atomic.Uint64
	queuedRuns                atomic.Uint64
	queueWaitNS               atomic.Int64
}

// EngineOption configures NewEngine.
type EngineOption func(*engineConfig)

type engineConfig struct {
	workers  int
	cacheCap int
}

// WithWorkers bounds the Engine's worker pool to n concurrent runs;
// excess runs wait in the admission queue (their wait is reported as
// Stats.QueueWait). n ≤ 0 removes the bound. NewEngine's default is
// GOMAXPROCS — one kernel's thread pool per hardware context.
func WithWorkers(n int) EngineOption {
	return func(c *engineConfig) { c.workers = n }
}

// WithResultCache sets the LRU result-cache capacity in entries;
// capacity ≤ 0 disables result caching entirely. NewEngine's default is
// DefaultCacheCapacity.
func WithResultCache(capacity int) EngineOption {
	return func(c *engineConfig) { c.cacheCap = capacity }
}

// NewEngine builds an Engine with a GOMAXPROCS-bounded worker pool and a
// DefaultCacheCapacity-entry result cache, then applies opts.
func NewEngine(opts ...EngineOption) *Engine {
	cfg := engineConfig{workers: runtime.GOMAXPROCS(0), cacheCap: DefaultCacheCapacity}
	for _, opt := range opts {
		opt(&cfg)
	}
	e := &Engine{workloads: map[string]*Workload{}}
	if cfg.workers > 0 {
		e.sem = make(chan struct{}, cfg.workers)
	}
	if cfg.cacheCap > 0 {
		e.cache = newResultCache(cfg.cacheCap)
	}
	return e
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the process-wide Engine behind the package-level
// Run, initializing it on first use. It is deliberately unbounded and
// uncached — the facade's one-shot semantics (every Run measures a real
// kernel execution) predate the Engine and must survive it; a serving
// layer wanting admission control and result caching builds its own
// Engine with NewEngine.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() {
		defaultEngine = NewEngine(WithWorkers(0), WithResultCache(0))
	})
	return defaultEngine
}

// Run executes the named algorithm on a Runnable exactly like the
// package-level Run, routed through this Engine's admission queue and
// result cache.
//
// A run is served from cache when all of the following hold: the Engine
// caches (WithResultCache > 0), the caller passed a *Workload handle (a
// bare *Graph is single-use, so hashing it every call would be pure
// overhead), the options fingerprint as cacheable (no WithIterationHook,
// WithProbes, WithPartitionAwareGraph, or custom switch policy), and an
// identical (workload content, algorithm, options) run completed before.
// Cache hits bypass the worker pool and return a shallow copy of the
// cached Report with Stats.CacheHit set. On a caching Engine the payload
// slices of a cacheable run are shared between the run that computed
// them and every later hit, so ALL callers — the first (miss) included —
// must treat them as read-only. Canceled (partial) runs and failed runs
// are never cached.
func (e *Engine) Run(ctx context.Context, on Runnable, algorithm string, opts ...Option) (*Report, error) {
	w, err := resolveWorkload(on)
	if err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	a, err := Lookup(algorithm)
	if err != nil {
		return nil, err
	}
	cfg := &Config{}
	for _, opt := range opts {
		opt(cfg)
	}
	if err := validateOptions(cfg); err != nil {
		return nil, err
	}
	if err := validateCaps(a, w, cfg); err != nil {
		return nil, err
	}

	_, isHandle := on.(*Workload)
	key := ""
	if e.cache != nil && isHandle {
		if fp, ok := cfg.fingerprint(); ok {
			key = w.ID() + "|" + a.Name() + "|" + fp
		}
	}
	if key == "" {
		e.uncacheable.Add(1)
	} else if rep, ok := e.cacheGet(key); ok {
		e.hits.Add(1)
		return cachedCopy(rep), nil
	} else {
		e.misses.Add(1)
	}

	wait, err := e.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer e.release()

	rep, err := execute(ctx, a, w, cfg)
	if rep != nil {
		rep.Stats.QueueWait = wait
		if key != "" && err == nil && !rep.Stats.Canceled {
			// Store a snapshot of the struct so the miss-path caller
			// editing its Report fields cannot poison later hits. The
			// payload slices stay shared (deep-copying every result
			// shape would defeat the cache): on a caching Engine they
			// are read-only for every caller, miss and hit alike.
			snap := *rep
			e.cachePut(key, &snap)
		}
	}
	return rep, err
}

// execute is the dispatch tail shared by every Engine: capability checks
// are already done, so run the algorithm and normalize the Report.
func execute(ctx context.Context, a Algorithm, w *Workload, cfg *Config) (*Report, error) {
	rep, err := a.Run(ctx, w, cfg)
	if rep != nil {
		rep.Algorithm = a.Name()
		// Surface the cancellation only when the run actually stopped
		// early: a run that completed its final iteration just as ctx
		// fired — or an instrumented (WithProbes) run, which never
		// polls ctx — returns its complete result without error.
		if err == nil && rep.Stats.Canceled && ctx.Err() != nil {
			err = ctx.Err()
		}
	}
	return rep, err
}

// admit blocks until a worker slot frees up (or ctx fires while
// queueing), returning how long the run waited.
func (e *Engine) admit(ctx context.Context) (time.Duration, error) {
	if e.sem == nil {
		return 0, nil
	}
	select {
	case e.sem <- struct{}{}:
		return 0, nil
	default:
	}
	e.queuedRuns.Add(1)
	start := time.Now()
	select {
	case e.sem <- struct{}{}:
		wait := time.Since(start)
		e.queueWaitNS.Add(int64(wait))
		return wait, nil
	case <-ctx.Done():
		e.queueWaitNS.Add(int64(time.Since(start)))
		return 0, fmt.Errorf("pushpull: canceled in admission queue: %w", ctx.Err())
	}
}

func (e *Engine) release() {
	if e.sem != nil {
		<-e.sem
	}
}

// cachedCopy returns the per-request view of a cached report: a shallow
// copy flagged CacheHit, sharing the (read-only) payload of the original
// run while keeping that run's timings visible.
func cachedCopy(rep *Report) *Report {
	cp := *rep
	cp.Stats.CacheHit = true
	cp.Stats.QueueWait = 0
	return &cp
}

func (e *Engine) cacheGet(key string) (*Report, bool) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	return e.cache.get(key)
}

func (e *Engine) cachePut(key string, rep *Report) {
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	e.cache.put(key, rep)
}

// EngineStats is a point-in-time snapshot of an Engine's serving
// telemetry.
type EngineStats struct {
	// CacheHits / CacheMisses count cacheable runs by outcome.
	CacheHits, CacheMisses uint64
	// Uncacheable counts runs that bypassed the cache (bare *Graph,
	// hooks, probes, caller-supplied PA layouts, custom policies, or a
	// cache-disabled Engine).
	Uncacheable uint64
	// CacheEntries is the current number of cached reports.
	CacheEntries int
	// QueuedRuns counts runs that waited in the admission queue;
	// QueueWait is their cumulative wait.
	QueuedRuns uint64
	QueueWait  time.Duration
}

// Stats snapshots the Engine's cache and queue telemetry.
func (e *Engine) Stats() EngineStats {
	s := EngineStats{
		CacheHits:   e.hits.Load(),
		CacheMisses: e.misses.Load(),
		Uncacheable: e.uncacheable.Load(),
		QueuedRuns:  e.queuedRuns.Load(),
		QueueWait:   time.Duration(e.queueWaitNS.Load()),
	}
	if e.cache != nil {
		e.cacheMu.Lock()
		s.CacheEntries = e.cache.ll.Len()
		e.cacheMu.Unlock()
	}
	return s
}

// ---- named workloads (the serving front's graph registry) ----

// RegisterWorkload binds name to a Workload handle on this Engine,
// replacing any previous binding (PUT semantics — re-uploading a graph
// under the same name is how a serving front refreshes it; the result
// cache keys on content identity, so stale entries cannot be served for
// the new graph).
func (e *Engine) RegisterWorkload(name string, w *Workload) error {
	if name == "" {
		return fmt.Errorf("pushpull: RegisterWorkload with empty name")
	}
	if w == nil || w.g == nil {
		return fmt.Errorf("pushpull: RegisterWorkload(%q) with nil workload", name)
	}
	e.wlMu.Lock()
	defer e.wlMu.Unlock()
	e.workloads[name] = w
	return nil
}

// Workload returns the handle registered under name, if any.
func (e *Engine) Workload(name string) (*Workload, bool) {
	e.wlMu.RLock()
	defer e.wlMu.RUnlock()
	w, ok := e.workloads[name]
	return w, ok
}

// WorkloadNames lists the registered workload names, sorted.
func (e *Engine) WorkloadNames() []string {
	e.wlMu.RLock()
	defer e.wlMu.RUnlock()
	names := make([]string, 0, len(e.workloads))
	for n := range e.workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---- LRU result cache ----

// resultCache is a plain LRU over completed Reports; the Engine guards
// it with cacheMu (hits mutate recency, so even reads write).
type resultCache struct {
	capacity int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key string
	rep *Report
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{capacity: capacity, ll: list.New(), entries: map[string]*list.Element{}}
}

func (c *resultCache) get(key string) (*Report, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

func (c *resultCache) put(key string, rep *Report) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, rep: rep})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}
