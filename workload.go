package pushpull

// Workload handles: the per-graph object that makes graph *kind* —
// undirected vs directed, weighted vs not, partitioned — first-class in
// the engine API, and that owns the expensive derived views every run
// otherwise recomputes or cannot reach at all.
//
// The paper's §4.8 observation motivates the design: pushing iterates the
// out-edges of a subset of vertices while pulling iterates the in-edges of
// all of them, so a directed graph needs *both* adjacency views and the
// cost bounds split into d̂out vs d̂in. The transpose (in-CSR) realizing the
// pull view, the Partition-Awareness split of §5, and the Table 2 graph
// statistics are all O(n + m) constructions worth exactly one build per
// graph — so the Workload builds them lazily and memoizes them for every
// subsequent Run, the engine-owned-view pattern of pull-frontier systems.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"sync"

	"pushpull/internal/graph"
)

// Runnable is what Run executes an algorithm on: either a bare *Graph
// (auto-wrapped into a single-use undirected Workload) or a *Workload
// handle that declares the graph kind and memoizes derived views across
// runs. No other type is accepted; Run rejects anything else at runtime.
type Runnable interface {
	// N returns the vertex count of the underlying graph.
	N() int
	// M returns the number of stored directed edge slots.
	M() int64
}

// Workload binds a graph to its declared kind (directed, weighted,
// partitioned) and lazily builds + memoizes the derived state repeated
// runs share: the transpose (in-CSR) powering directed pull, the
// Partition-Awareness split per partition count (§5), and the Table 2
// statistics. A Workload is safe for concurrent Runs.
type Workload struct {
	g        *Graph
	directed bool
	// weightsDeclared records a Weighted(...)/AsWeighted() claim, checked
	// against the graph at Run time so a mismatch fails fast and typed.
	weightsDeclared bool
	// defaultParts is the partition count of AsPartitioned; 0 defers to
	// WithPartitions / the resolved thread count.
	defaultParts int
	// degreeSorted is the AsDegreeSorted declaration: runs default to the
	// memoized degree-sorted CSR permutation (reports are un-permuted at
	// the boundary, so payloads match the plain layout).
	degreeSorted bool
	// hubK is the AsHubCached declaration: the hub-cache size k pull runs
	// default to (0 = none, AutoHubCache = size picked from n).
	hubK int
	// outOfCore is the AsOutOfCore declaration: capable runs default to the
	// block-sequential out-of-core kernels over the memoized block view.
	outOfCore bool
	// blockBuffered forces the buffered ReadAt reader over mmap — a
	// machine-local I/O choice (it bounds the resident set to one block per
	// worker), deliberately NOT part of the content identity.
	blockBuffered bool

	mu          sync.Mutex
	transpose   *Graph
	ds          *DegreeSortedView
	dsTranspose *Graph
	hubs        map[hubKey]*HubSplit
	stats       *GraphStats
	pa          map[int]*PAGraph
	blk         *graph.BlockCSR
	builds      WorkloadBuilds
	id          string
}

// hubKey identifies one memoized hub split: the segment size plus which
// adjacency view it was built over (degree-sorted or plain, in-edges or
// the graph itself).
type hubKey struct {
	k      int
	sorted bool
	in     bool
}

// WorkloadBuilds counts the derived-view constructions a Workload has
// performed — the observable behind memoization tests: a second Run on the
// same handle must not increase these.
type WorkloadBuilds struct {
	// Transposes counts in-CSR (transpose) builds.
	Transposes int
	// PASplits counts Partition-Awareness layout builds (one per distinct
	// partition count).
	PASplits int
	// Stats counts Table 2 statistics computations.
	Stats int
	// DegreeSorts counts degree-sorted CSR permutation builds.
	DegreeSorts int
	// HubSplits counts hub-split layout builds (one per distinct
	// size/view combination).
	HubSplits int
	// BlockBuilds counts out-of-core block-view constructions (write the
	// block file, reopen it mmap/buffered).
	BlockBuilds int
}

// WorkloadOption declares one aspect of a workload's kind at construction.
type WorkloadOption func(*Workload)

// AsDirected declares the graph directed: its CSR rows are out-edges, the
// memoized transpose supplies in-edges, and only algorithms whose Caps
// report Directed support will run.
func AsDirected() WorkloadOption { return func(w *Workload) { w.directed = true } }

// AsWeighted declares that the workload requires edge weights. A graph
// without weights then fails every Run fast with ErrNeedsWeights instead
// of computing over silently-assumed unit weights.
func AsWeighted() WorkloadOption { return func(w *Workload) { w.weightsDeclared = true } }

// AsPartitioned sets the workload's default partition count: partition-
// based runs (gc, partition-aware pr/tc) without an explicit
// WithPartitions use it, and the memoized PA split is keyed by it.
func AsPartitioned(parts int) WorkloadOption {
	return func(w *Workload) {
		if parts > 0 {
			w.defaultParts = parts
		}
	}
}

// AsDegreeSorted declares that runs should use the degree-sorted CSR
// permutation (vertices renumbered by descending degree): kernels compute
// over the memoized permuted graph — which packs the high-degree vertices
// into a contiguous id prefix, making the hub segment of AsHubCached
// cache-line friendly — and every report is un-permuted at the boundary,
// so payloads are identical to plain-layout runs. Algorithms without
// degree-sort support ignore the declaration.
func AsDegreeSorted() WorkloadOption { return func(w *Workload) { w.degreeSorted = true } }

// AsHubCached declares a hub-cache size k for pull runs: the pull view is
// split into a dense top-k hub segment read through a compact contiguous
// cache and a residual segment (see WithHubCache). k <= 0 selects the
// automatic size. Algorithms without hub-cache support ignore the
// declaration; an explicit WithHubCache on a run overrides it.
func AsHubCached(k int) WorkloadOption {
	return func(w *Workload) {
		if k <= 0 {
			k = AutoHubCache
		}
		w.hubK = k
	}
}

// AsOutOfCore declares that runs should use the out-of-core block layout:
// capable algorithms (pr, bfs) run their block-sequential pull kernels
// over the memoized block view — the adjacency streams from disk through
// mmap (or bounded buffers, see AsBlockBuffered) instead of being
// resident — and report payloads identical to in-memory runs. Algorithms
// without out-of-core support ignore the declaration.
func AsOutOfCore() WorkloadOption { return func(w *Workload) { w.outOfCore = true } }

// AsBlockBuffered forces the out-of-core block view to read segments
// through per-worker buffers (os.File ReadAt) instead of mmap, bounding
// the resident set to one block per worker. It is machine-local I/O
// tuning, not part of the content identity.
func AsBlockBuffered() WorkloadOption { return func(w *Workload) { w.blockBuffered = true } }

// NewWorkload wraps g in a Workload handle. Without options the workload
// is undirected and unweighted-tolerant — exactly what Run's bare-*Graph
// auto-wrapping produces, except that the handle persists its memoized
// views across runs.
func NewWorkload(g *Graph, opts ...WorkloadOption) *Workload {
	w := &Workload{g: g}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Directed is NewWorkload(g, AsDirected(), opts...): a handle for a
// directed graph whose CSR rows are out-edges.
func Directed(g *Graph, opts ...WorkloadOption) *Workload {
	return NewWorkload(g, append([]WorkloadOption{AsDirected()}, opts...)...)
}

// Weighted is NewWorkload(g, AsWeighted(), opts...): a handle that
// requires edge weights and fails fast (ErrNeedsWeights) when g has none.
func Weighted(g *Graph, opts ...WorkloadOption) *Workload {
	return NewWorkload(g, append([]WorkloadOption{AsWeighted()}, opts...)...)
}

// Partitioned is NewWorkload(g, AsPartitioned(parts), opts...): a handle
// with a default partition count for partition-based runs.
func Partitioned(g *Graph, parts int, opts ...WorkloadOption) *Workload {
	return NewWorkload(g, append([]WorkloadOption{AsPartitioned(parts)}, opts...)...)
}

// OpenOutOfCoreWorkload opens a block-format file (written by
// graph.WriteBlockFile or a DiskStore) as a pure out-of-core handle: no
// in-memory CSR is materialized, ever — Graph() returns nil, the graph
// kind comes from the file header, and only algorithms whose Caps report
// OutOfCore support will run. The handle holds the file open (and
// mmapped, unless AsBlockBuffered); Close releases it.
func OpenOutOfCoreWorkload(path string, opts ...WorkloadOption) (*Workload, error) {
	w := &Workload{outOfCore: true}
	for _, opt := range opts {
		opt(w)
	}
	var bopts []graph.BlockOpt
	if w.blockBuffered {
		bopts = append(bopts, graph.Buffered())
	}
	blk, err := graph.OpenBlockCSR(path, bopts...)
	if err != nil {
		return nil, err
	}
	w.blk = blk
	w.directed = blk.Directed()
	w.weightsDeclared = blk.Weighted()
	return w, nil
}

// Graph returns the underlying graph (out-edges, for directed
// workloads), or nil for a pure out-of-core handle that never
// materializes one.
func (w *Workload) Graph() *Graph { return w.g }

// N returns the vertex count (satisfying Runnable).
func (w *Workload) N() int {
	if w.g == nil {
		return w.blk.N()
	}
	return w.g.N()
}

// M returns the stored directed edge-slot count (satisfying Runnable).
func (w *Workload) M() int64 {
	if w.g == nil {
		return w.blk.M()
	}
	return w.g.M()
}

// IsDirected reports whether the workload was declared directed.
func (w *Workload) IsDirected() bool { return w.directed }

// HasWeights reports whether the underlying graph carries edge weights.
func (w *Workload) HasWeights() bool {
	if w.g == nil {
		return w.blk.Weighted()
	}
	return w.g.Weighted()
}

// WeightsDeclared reports whether the workload was constructed with
// Weighted/AsWeighted — i.e. whether it promises weights to every run.
func (w *Workload) WeightsDeclared() bool { return w.weightsDeclared }

// DefaultPartitions returns the AsPartitioned count, or 0 when none was
// declared.
func (w *Workload) DefaultPartitions() int { return w.defaultParts }

// IsDegreeSorted reports whether the workload was declared AsDegreeSorted.
func (w *Workload) IsDegreeSorted() bool { return w.degreeSorted }

// HubCacheK returns the AsHubCached declaration: 0 when none was made,
// AutoHubCache for the automatic size, otherwise the explicit k.
func (w *Workload) HubCacheK() int { return w.hubK }

// IsOutOfCore reports whether runs default to the out-of-core block
// kernels: either the handle was declared AsOutOfCore, or it is a pure
// file handle with no in-memory graph at all.
func (w *Workload) IsOutOfCore() bool { return w.outOfCore || w.g == nil }

// Close releases the memoized out-of-core block view (the open file and
// its mapping), if any. The workload must not Run afterwards. Handles
// that never touched the out-of-core path close as a no-op.
func (w *Workload) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.blk == nil {
		return nil
	}
	blk := w.blk
	w.blk = nil
	return blk.Close()
}

// Transpose returns the in-edge view (the reverse CSR), building it on
// first use and memoizing it for every later call. For an undirected
// workload the adjacency is symmetric, so the graph itself is returned
// without building anything.
func (w *Workload) Transpose() *Graph {
	if !w.directed {
		return w.g
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.transposeLocked()
}

func (w *Workload) transposeLocked() *Graph {
	if !w.directed {
		return w.g
	}
	if w.transpose == nil {
		w.transpose = w.g.Transpose()
		w.builds.Transposes++
	}
	return w.transpose
}

// DegreeSorted returns the memoized degree-sorted view of the graph:
// the CSR permuted so vertex ids descend by degree, plus the permutation
// and its inverse for un-permuting results at the report boundary. Built
// on first use, like the transpose.
func (w *Workload) DegreeSorted() *DegreeSortedView {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.degreeSortedLocked()
}

func (w *Workload) degreeSortedLocked() *DegreeSortedView {
	if w.ds == nil {
		w.ds = graph.SortByDegree(w.g)
		w.builds.DegreeSorts++
	}
	return w.ds
}

// SortedTranspose returns the in-edge view of the degree-sorted graph —
// the pull view of a directed degree-sorted run — memoized like the plain
// transpose. For an undirected workload it is the degree-sorted graph
// itself.
func (w *Workload) SortedTranspose() *Graph {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sortedTransposeLocked()
}

func (w *Workload) sortedTransposeLocked() *Graph {
	ds := w.degreeSortedLocked()
	if !w.directed {
		return ds.G
	}
	if w.dsTranspose == nil {
		w.dsTranspose = ds.G.Transpose()
		w.builds.Transposes++
	}
	return w.dsTranspose
}

// HubSplit returns the memoized hub split of size k over the requested
// pull view: the degree-sorted graph when sorted, the in-edge view when
// in (directed pull), the graph itself otherwise. One split is built per
// distinct (k, view) combination and shared by every later run.
func (w *Workload) HubSplit(k int, sorted, in bool) *HubSplit {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hubs == nil {
		w.hubs = map[hubKey]*HubSplit{}
	}
	key := hubKey{k: k, sorted: sorted, in: in}
	hs, ok := w.hubs[key]
	if !ok {
		var view *Graph
		switch {
		case sorted && in:
			view = w.sortedTransposeLocked()
		case sorted:
			view = w.degreeSortedLocked().G
		case in:
			view = w.transposeLocked()
		default:
			view = w.g
		}
		hs = graph.BuildHubSplit(view, k)
		w.hubs[key] = hs
		w.builds.HubSplits++
	}
	return hs
}

// PA returns the Partition-Awareness split (§5, Algorithm 8) of the graph
// over parts partitions, building it on first use per distinct count and
// memoizing it for every later call.
func (w *Workload) PA(parts int) *PAGraph {
	if parts < 1 {
		parts = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pa == nil {
		w.pa = map[int]*PAGraph{}
	}
	pa, ok := w.pa[parts]
	if !ok {
		pa = graph.BuildPA(w.g, graph.NewPartition(w.g.N(), parts))
		w.pa[parts] = pa
		w.builds.PASplits++
	}
	return pa
}

// Stats returns the memoized Table 2 statistics of the graph. A pure
// out-of-core handle has no in-memory CSR to scan and returns the zero
// statistics.
func (w *Workload) Stats() GraphStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.g == nil {
		return GraphStats{}
	}
	if w.stats == nil {
		s := graph.ComputeStats(w.g)
		w.stats = &s
		w.builds.Stats++
	}
	return *w.stats
}

// OutOfCore returns the memoized block view the out-of-core kernels run
// over, building it on first use: the pull-view CSR (the graph itself,
// or the transpose for directed workloads) is serialized to a temporary
// block file, reopened mmap-backed (or buffered, per AsBlockBuffered),
// and immediately unlinked so the kernel-visible file lives exactly as
// long as the handle. A pure file handle returns its already-open view.
func (w *Workload) OutOfCore() (*graph.BlockCSR, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	//pushpull:allow lockheld first-build memoization under the handle lock by design: concurrent runs must share one block view, not race to write two temp files
	return w.outOfCoreLocked()
}

func (w *Workload) outOfCoreLocked() (*graph.BlockCSR, error) {
	if w.blk != nil {
		return w.blk, nil
	}
	if w.g == nil {
		return nil, fmt.Errorf("pushpull: out-of-core workload has no open block view")
	}
	pull := w.g
	var outDeg []int64
	if w.directed {
		pull = w.transposeLocked()
		n := w.g.N()
		outDeg = make([]int64, n)
		for v := 0; v < n; v++ {
			outDeg[v] = w.g.Degree(graph.V(v))
		}
	}
	f, err := os.CreateTemp("", "pushpull-blk-*")
	if err != nil {
		return nil, fmt.Errorf("pushpull: building block view: %w", err)
	}
	path := f.Name()
	werr := graph.WriteBlock(f, pull, outDeg, 0)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(path)
		return nil, fmt.Errorf("pushpull: building block view: %w", werr)
	}
	var bopts []graph.BlockOpt
	if w.blockBuffered {
		bopts = append(bopts, graph.Buffered())
	}
	blk, err := graph.OpenBlockCSR(path, bopts...)
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	// Unlink-while-open: the open fd (and mapping) keeps the data alive,
	// and nothing is left behind when the process dies.
	os.Remove(path)
	w.blk = blk
	w.builds.BlockBuilds++
	return blk, nil
}

// writeBlockTo serializes the workload's pull view in the on-disk block
// format (the layout OpenOutOfCoreWorkload reads back). DiskStore uses it
// to persist graphs above its block threshold directly in the out-of-core
// layout, so a restore never has to materialize them.
func (w *Workload) writeBlockTo(dst io.Writer) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.g == nil {
		return fmt.Errorf("pushpull: pure out-of-core workload has no in-memory graph to serialize")
	}
	pull := w.g
	var outDeg []int64
	if w.directed {
		pull = w.transposeLocked()
		n := w.g.N()
		outDeg = make([]int64, n)
		for v := 0; v < n; v++ {
			outDeg[v] = w.g.Degree(graph.V(v))
		}
	}
	return graph.WriteBlock(dst, pull, outDeg, 0)
}

// ID returns the workload's stable content identity: a digest of the
// adjacency structure, the edge weights, and the declared kind (directed,
// weighted, default partitions). Two handles over equal content share the
// ID — it is what an Engine's result cache and single-flight dedup key
// on, and what shard placement hashes, so cached reports (and shard
// affinity) survive re-wrapping or re-loading the same graph, including a
// restore from a GraphStore after a restart. The digest is an O(n + m)
// pass computed once per handle and memoized.
func (w *Workload) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.id == "" {
		w.id = w.contentID()
	}
	return w.id
}

// contentID hashes the CSR arrays and the kind flags (FNV-1a, 64-bit).
// Out-of-core handles hash the PULL view (the graph itself when
// undirected, the transpose when directed) — the arrays the block file
// stores — so a handle declared AsOutOfCore in memory and the same graph
// reopened from its block file share one identity: cached reports and
// shard placements survive the materialized→out-of-core swap.
func (w *Workload) contentID() string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	ooc := w.outOfCore || w.g == nil
	switch {
	case !ooc:
		g := w.g
		put(uint64(g.N()))
		put(uint64(g.M()))
		for _, o := range g.Offsets {
			put(uint64(o))
		}
		for _, v := range g.Adj {
			put(uint64(v))
		}
		for _, wt := range g.Weights {
			put(uint64(math.Float32bits(wt)))
		}
	case w.g != nil:
		pull := w.g
		if w.directed {
			pull = w.transposeLocked()
		}
		put(uint64(w.g.N()))
		put(uint64(w.g.M()))
		for _, o := range pull.Offsets {
			put(uint64(o))
		}
		for _, v := range pull.Adj {
			put(uint64(v))
		}
		for _, wt := range pull.Weights {
			put(uint64(math.Float32bits(wt)))
		}
	default:
		// Pure file handle: stream the adjacency block-sequentially (two
		// passes when weighted, matching the all-adj-then-all-weights hash
		// order of the in-memory path). The file was validated at open; a
		// read failure here degrades the digest, not correctness.
		blk := w.blk
		put(uint64(blk.N()))
		put(uint64(blk.M()))
		for _, o := range blk.Offsets {
			put(uint64(o))
		}
		_ = blk.VisitBlocks(func(adj []graph.V, _ []float32) error {
			for _, v := range adj {
				put(uint64(v))
			}
			return nil
		})
		if blk.Weighted() {
			_ = blk.VisitBlocks(func(_ []graph.V, ws []float32) error {
				for _, wt := range ws {
					put(uint64(math.Float32bits(wt)))
				}
				return nil
			})
		}
	}
	// The declared kind changes what a run computes (directed dispatch,
	// the partition default), so it is part of the identity.
	var kind uint64
	if w.directed {
		kind |= 1
	}
	if w.weightsDeclared {
		kind |= 2
	}
	if w.HasWeights() {
		kind |= 4
	}
	kind |= uint64(w.defaultParts) << 3
	put(kind)
	// The layout declarations change what a run computes over (the
	// degree-sorted permutation, the hub split, the out-of-core block
	// layout), so they are part of the identity too — but the word is
	// folded only when one is set, keeping plain handles' IDs (and their
	// DiskStore/shard placements) identical to releases that predate the
	// options.
	if w.degreeSorted || w.hubK != 0 || ooc {
		var opt uint64 = 1
		if w.degreeSorted {
			opt |= 2
		}
		opt |= uint64(uint32(int32(w.hubK))) << 2
		if ooc {
			opt |= 1 << 34
		}
		put(opt)
	}
	return fmt.Sprintf("w%016x-n%d", h.Sum64(), w.N())
}

// Builds reports how many derived-view constructions this workload has
// performed so far — the memoization observable: repeated runs on the same
// handle must not increase the counts.
func (w *Workload) Builds() WorkloadBuilds {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.builds
}

// Kind renders the declared kind ("undirected", "directed weighted", ...)
// for error messages and summaries.
func (w *Workload) Kind() string {
	k := "undirected"
	if w.directed {
		k = "directed"
	}
	if w.weightsDeclared || w.HasWeights() {
		k += " weighted"
	}
	if w.defaultParts > 0 {
		k += fmt.Sprintf(" partitioned(%d)", w.defaultParts)
	}
	if w.degreeSorted {
		k += " degree-sorted"
	}
	if w.hubK != 0 {
		if w.hubK == AutoHubCache {
			k += " hub-cached(auto)"
		} else {
			k += fmt.Sprintf(" hub-cached(%d)", w.hubK)
		}
	}
	if w.IsOutOfCore() {
		k += " out-of-core"
	}
	return k
}

// resolveWorkload lowers a Runnable onto the Workload handle the engine
// dispatches on: a *Workload passes through, a bare *Graph auto-wraps
// into a fresh undirected handle, anything else is rejected.
func resolveWorkload(on Runnable) (*Workload, error) {
	switch v := on.(type) {
	case *Workload:
		if v == nil {
			return nil, fmt.Errorf("pushpull: Run on nil workload")
		}
		if v.g == nil && !v.outOfCore {
			return nil, fmt.Errorf("pushpull: Run on workload with nil graph")
		}
		return v, nil
	case *Graph:
		if v == nil {
			return nil, fmt.Errorf("pushpull: Run on nil graph")
		}
		return NewWorkload(v), nil
	case nil:
		return nil, fmt.Errorf("pushpull: Run on nil graph")
	default:
		return nil, fmt.Errorf("pushpull: Run accepts *Graph or *Workload, got %T", on)
	}
}

// ---- workload serialization ----

// WriteWorkload serializes the workload as a portable edge list whose
// header records the graph kind, so directedness and weights survive the
// round trip through ReadWorkload. The AsPartitioned default is
// deliberately NOT serialized: it is machine-local tuning (it tracks the
// reader's thread count, not the graph), so the loading side declares its
// own via Partitioned/AsPartitioned.
func WriteWorkload(dst io.Writer, w *Workload) error {
	if w.g == nil {
		return fmt.Errorf("pushpull: cannot serialize a pure out-of-core workload as an edge list (it lives in its block file)")
	}
	return graph.WriteEdgeListKind(dst, w.g, w.directed)
}

// ReadWorkload parses an edge list written by WriteWorkload (or
// WriteEdgeList), restoring the recorded graph kind: the returned handle
// is directed and/or weighted exactly as the written one was (the
// partition default is not persisted; see WriteWorkload).
func ReadWorkload(src io.Reader) (*Workload, error) {
	g, directed, err := graph.ReadEdgeListKind(src)
	if err != nil {
		return nil, err
	}
	var opts []WorkloadOption
	if directed {
		opts = append(opts, AsDirected())
	}
	if g.Weighted() {
		opts = append(opts, AsWeighted())
	}
	return NewWorkload(g, opts...), nil
}
