package pushpull

// Workload handles: the per-graph object that makes graph *kind* —
// undirected vs directed, weighted vs not, partitioned — first-class in
// the engine API, and that owns the expensive derived views every run
// otherwise recomputes or cannot reach at all.
//
// The paper's §4.8 observation motivates the design: pushing iterates the
// out-edges of a subset of vertices while pulling iterates the in-edges of
// all of them, so a directed graph needs *both* adjacency views and the
// cost bounds split into d̂out vs d̂in. The transpose (in-CSR) realizing the
// pull view, the Partition-Awareness split of §5, and the Table 2 graph
// statistics are all O(n + m) constructions worth exactly one build per
// graph — so the Workload builds them lazily and memoizes them for every
// subsequent Run, the engine-owned-view pattern of pull-frontier systems.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"

	"pushpull/internal/graph"
)

// Runnable is what Run executes an algorithm on: either a bare *Graph
// (auto-wrapped into a single-use undirected Workload) or a *Workload
// handle that declares the graph kind and memoizes derived views across
// runs. No other type is accepted; Run rejects anything else at runtime.
type Runnable interface {
	// N returns the vertex count of the underlying graph.
	N() int
	// M returns the number of stored directed edge slots.
	M() int64
}

// Workload binds a graph to its declared kind (directed, weighted,
// partitioned) and lazily builds + memoizes the derived state repeated
// runs share: the transpose (in-CSR) powering directed pull, the
// Partition-Awareness split per partition count (§5), and the Table 2
// statistics. A Workload is safe for concurrent Runs.
type Workload struct {
	g        *Graph
	directed bool
	// weightsDeclared records a Weighted(...)/AsWeighted() claim, checked
	// against the graph at Run time so a mismatch fails fast and typed.
	weightsDeclared bool
	// defaultParts is the partition count of AsPartitioned; 0 defers to
	// WithPartitions / the resolved thread count.
	defaultParts int
	// degreeSorted is the AsDegreeSorted declaration: runs default to the
	// memoized degree-sorted CSR permutation (reports are un-permuted at
	// the boundary, so payloads match the plain layout).
	degreeSorted bool
	// hubK is the AsHubCached declaration: the hub-cache size k pull runs
	// default to (0 = none, AutoHubCache = size picked from n).
	hubK int

	mu          sync.Mutex
	transpose   *Graph
	ds          *DegreeSortedView
	dsTranspose *Graph
	hubs        map[hubKey]*HubSplit
	stats       *GraphStats
	pa          map[int]*PAGraph
	builds      WorkloadBuilds
	id          string
}

// hubKey identifies one memoized hub split: the segment size plus which
// adjacency view it was built over (degree-sorted or plain, in-edges or
// the graph itself).
type hubKey struct {
	k      int
	sorted bool
	in     bool
}

// WorkloadBuilds counts the derived-view constructions a Workload has
// performed — the observable behind memoization tests: a second Run on the
// same handle must not increase these.
type WorkloadBuilds struct {
	// Transposes counts in-CSR (transpose) builds.
	Transposes int
	// PASplits counts Partition-Awareness layout builds (one per distinct
	// partition count).
	PASplits int
	// Stats counts Table 2 statistics computations.
	Stats int
	// DegreeSorts counts degree-sorted CSR permutation builds.
	DegreeSorts int
	// HubSplits counts hub-split layout builds (one per distinct
	// size/view combination).
	HubSplits int
}

// WorkloadOption declares one aspect of a workload's kind at construction.
type WorkloadOption func(*Workload)

// AsDirected declares the graph directed: its CSR rows are out-edges, the
// memoized transpose supplies in-edges, and only algorithms whose Caps
// report Directed support will run.
func AsDirected() WorkloadOption { return func(w *Workload) { w.directed = true } }

// AsWeighted declares that the workload requires edge weights. A graph
// without weights then fails every Run fast with ErrNeedsWeights instead
// of computing over silently-assumed unit weights.
func AsWeighted() WorkloadOption { return func(w *Workload) { w.weightsDeclared = true } }

// AsPartitioned sets the workload's default partition count: partition-
// based runs (gc, partition-aware pr/tc) without an explicit
// WithPartitions use it, and the memoized PA split is keyed by it.
func AsPartitioned(parts int) WorkloadOption {
	return func(w *Workload) {
		if parts > 0 {
			w.defaultParts = parts
		}
	}
}

// AsDegreeSorted declares that runs should use the degree-sorted CSR
// permutation (vertices renumbered by descending degree): kernels compute
// over the memoized permuted graph — which packs the high-degree vertices
// into a contiguous id prefix, making the hub segment of AsHubCached
// cache-line friendly — and every report is un-permuted at the boundary,
// so payloads are identical to plain-layout runs. Algorithms without
// degree-sort support ignore the declaration.
func AsDegreeSorted() WorkloadOption { return func(w *Workload) { w.degreeSorted = true } }

// AsHubCached declares a hub-cache size k for pull runs: the pull view is
// split into a dense top-k hub segment read through a compact contiguous
// cache and a residual segment (see WithHubCache). k <= 0 selects the
// automatic size. Algorithms without hub-cache support ignore the
// declaration; an explicit WithHubCache on a run overrides it.
func AsHubCached(k int) WorkloadOption {
	return func(w *Workload) {
		if k <= 0 {
			k = AutoHubCache
		}
		w.hubK = k
	}
}

// NewWorkload wraps g in a Workload handle. Without options the workload
// is undirected and unweighted-tolerant — exactly what Run's bare-*Graph
// auto-wrapping produces, except that the handle persists its memoized
// views across runs.
func NewWorkload(g *Graph, opts ...WorkloadOption) *Workload {
	w := &Workload{g: g}
	for _, opt := range opts {
		opt(w)
	}
	return w
}

// Directed is NewWorkload(g, AsDirected(), opts...): a handle for a
// directed graph whose CSR rows are out-edges.
func Directed(g *Graph, opts ...WorkloadOption) *Workload {
	return NewWorkload(g, append([]WorkloadOption{AsDirected()}, opts...)...)
}

// Weighted is NewWorkload(g, AsWeighted(), opts...): a handle that
// requires edge weights and fails fast (ErrNeedsWeights) when g has none.
func Weighted(g *Graph, opts ...WorkloadOption) *Workload {
	return NewWorkload(g, append([]WorkloadOption{AsWeighted()}, opts...)...)
}

// Partitioned is NewWorkload(g, AsPartitioned(parts), opts...): a handle
// with a default partition count for partition-based runs.
func Partitioned(g *Graph, parts int, opts ...WorkloadOption) *Workload {
	return NewWorkload(g, append([]WorkloadOption{AsPartitioned(parts)}, opts...)...)
}

// Graph returns the underlying graph (out-edges, for directed workloads).
func (w *Workload) Graph() *Graph { return w.g }

// N returns the vertex count (satisfying Runnable).
func (w *Workload) N() int { return w.g.N() }

// M returns the stored directed edge-slot count (satisfying Runnable).
func (w *Workload) M() int64 { return w.g.M() }

// IsDirected reports whether the workload was declared directed.
func (w *Workload) IsDirected() bool { return w.directed }

// HasWeights reports whether the underlying graph carries edge weights.
func (w *Workload) HasWeights() bool { return w.g.Weighted() }

// WeightsDeclared reports whether the workload was constructed with
// Weighted/AsWeighted — i.e. whether it promises weights to every run.
func (w *Workload) WeightsDeclared() bool { return w.weightsDeclared }

// DefaultPartitions returns the AsPartitioned count, or 0 when none was
// declared.
func (w *Workload) DefaultPartitions() int { return w.defaultParts }

// IsDegreeSorted reports whether the workload was declared AsDegreeSorted.
func (w *Workload) IsDegreeSorted() bool { return w.degreeSorted }

// HubCacheK returns the AsHubCached declaration: 0 when none was made,
// AutoHubCache for the automatic size, otherwise the explicit k.
func (w *Workload) HubCacheK() int { return w.hubK }

// Transpose returns the in-edge view (the reverse CSR), building it on
// first use and memoizing it for every later call. For an undirected
// workload the adjacency is symmetric, so the graph itself is returned
// without building anything.
func (w *Workload) Transpose() *Graph {
	if !w.directed {
		return w.g
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.transposeLocked()
}

func (w *Workload) transposeLocked() *Graph {
	if !w.directed {
		return w.g
	}
	if w.transpose == nil {
		w.transpose = w.g.Transpose()
		w.builds.Transposes++
	}
	return w.transpose
}

// DegreeSorted returns the memoized degree-sorted view of the graph:
// the CSR permuted so vertex ids descend by degree, plus the permutation
// and its inverse for un-permuting results at the report boundary. Built
// on first use, like the transpose.
func (w *Workload) DegreeSorted() *DegreeSortedView {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.degreeSortedLocked()
}

func (w *Workload) degreeSortedLocked() *DegreeSortedView {
	if w.ds == nil {
		w.ds = graph.SortByDegree(w.g)
		w.builds.DegreeSorts++
	}
	return w.ds
}

// SortedTranspose returns the in-edge view of the degree-sorted graph —
// the pull view of a directed degree-sorted run — memoized like the plain
// transpose. For an undirected workload it is the degree-sorted graph
// itself.
func (w *Workload) SortedTranspose() *Graph {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sortedTransposeLocked()
}

func (w *Workload) sortedTransposeLocked() *Graph {
	ds := w.degreeSortedLocked()
	if !w.directed {
		return ds.G
	}
	if w.dsTranspose == nil {
		w.dsTranspose = ds.G.Transpose()
		w.builds.Transposes++
	}
	return w.dsTranspose
}

// HubSplit returns the memoized hub split of size k over the requested
// pull view: the degree-sorted graph when sorted, the in-edge view when
// in (directed pull), the graph itself otherwise. One split is built per
// distinct (k, view) combination and shared by every later run.
func (w *Workload) HubSplit(k int, sorted, in bool) *HubSplit {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.hubs == nil {
		w.hubs = map[hubKey]*HubSplit{}
	}
	key := hubKey{k: k, sorted: sorted, in: in}
	hs, ok := w.hubs[key]
	if !ok {
		var view *Graph
		switch {
		case sorted && in:
			view = w.sortedTransposeLocked()
		case sorted:
			view = w.degreeSortedLocked().G
		case in:
			view = w.transposeLocked()
		default:
			view = w.g
		}
		hs = graph.BuildHubSplit(view, k)
		w.hubs[key] = hs
		w.builds.HubSplits++
	}
	return hs
}

// PA returns the Partition-Awareness split (§5, Algorithm 8) of the graph
// over parts partitions, building it on first use per distinct count and
// memoizing it for every later call.
func (w *Workload) PA(parts int) *PAGraph {
	if parts < 1 {
		parts = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pa == nil {
		w.pa = map[int]*PAGraph{}
	}
	pa, ok := w.pa[parts]
	if !ok {
		pa = graph.BuildPA(w.g, graph.NewPartition(w.g.N(), parts))
		w.pa[parts] = pa
		w.builds.PASplits++
	}
	return pa
}

// Stats returns the memoized Table 2 statistics of the graph.
func (w *Workload) Stats() GraphStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.stats == nil {
		s := graph.ComputeStats(w.g)
		w.stats = &s
		w.builds.Stats++
	}
	return *w.stats
}

// ID returns the workload's stable content identity: a digest of the
// adjacency structure, the edge weights, and the declared kind (directed,
// weighted, default partitions). Two handles over equal content share the
// ID — it is what an Engine's result cache and single-flight dedup key
// on, and what shard placement hashes, so cached reports (and shard
// affinity) survive re-wrapping or re-loading the same graph, including a
// restore from a GraphStore after a restart. The digest is an O(n + m)
// pass computed once per handle and memoized.
func (w *Workload) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.id == "" {
		w.id = w.contentID()
	}
	return w.id
}

// contentID hashes the CSR arrays and the kind flags (FNV-1a, 64-bit).
func (w *Workload) contentID() string {
	h := fnv.New64a()
	var buf [8]byte
	put := func(x uint64) {
		binary.LittleEndian.PutUint64(buf[:], x)
		h.Write(buf[:])
	}
	g := w.g
	put(uint64(g.N()))
	put(uint64(g.M()))
	for _, o := range g.Offsets {
		put(uint64(o))
	}
	for _, v := range g.Adj {
		put(uint64(v))
	}
	for _, wt := range g.Weights {
		put(uint64(math.Float32bits(wt)))
	}
	// The declared kind changes what a run computes (directed dispatch,
	// the partition default), so it is part of the identity.
	var kind uint64
	if w.directed {
		kind |= 1
	}
	if w.weightsDeclared {
		kind |= 2
	}
	if g.Weighted() {
		kind |= 4
	}
	kind |= uint64(w.defaultParts) << 3
	put(kind)
	// The layout declarations change what a run computes over (the
	// degree-sorted permutation, the hub split), so they are part of the
	// identity too — but the word is folded only when one is set, keeping
	// plain handles' IDs (and their DiskStore/shard placements) identical
	// to releases that predate the options.
	if w.degreeSorted || w.hubK != 0 {
		var opt uint64 = 1
		if w.degreeSorted {
			opt |= 2
		}
		opt |= uint64(uint32(int32(w.hubK))) << 2
		put(opt)
	}
	return fmt.Sprintf("w%016x-n%d", h.Sum64(), g.N())
}

// Builds reports how many derived-view constructions this workload has
// performed so far — the memoization observable: repeated runs on the same
// handle must not increase the counts.
func (w *Workload) Builds() WorkloadBuilds {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.builds
}

// Kind renders the declared kind ("undirected", "directed weighted", ...)
// for error messages and summaries.
func (w *Workload) Kind() string {
	k := "undirected"
	if w.directed {
		k = "directed"
	}
	if w.weightsDeclared || w.HasWeights() {
		k += " weighted"
	}
	if w.defaultParts > 0 {
		k += fmt.Sprintf(" partitioned(%d)", w.defaultParts)
	}
	if w.degreeSorted {
		k += " degree-sorted"
	}
	if w.hubK != 0 {
		if w.hubK == AutoHubCache {
			k += " hub-cached(auto)"
		} else {
			k += fmt.Sprintf(" hub-cached(%d)", w.hubK)
		}
	}
	return k
}

// resolveWorkload lowers a Runnable onto the Workload handle the engine
// dispatches on: a *Workload passes through, a bare *Graph auto-wraps
// into a fresh undirected handle, anything else is rejected.
func resolveWorkload(on Runnable) (*Workload, error) {
	switch v := on.(type) {
	case *Workload:
		if v == nil {
			return nil, fmt.Errorf("pushpull: Run on nil workload")
		}
		if v.g == nil {
			return nil, fmt.Errorf("pushpull: Run on workload with nil graph")
		}
		return v, nil
	case *Graph:
		if v == nil {
			return nil, fmt.Errorf("pushpull: Run on nil graph")
		}
		return NewWorkload(v), nil
	case nil:
		return nil, fmt.Errorf("pushpull: Run on nil graph")
	default:
		return nil, fmt.Errorf("pushpull: Run accepts *Graph or *Workload, got %T", on)
	}
}

// ---- workload serialization ----

// WriteWorkload serializes the workload as a portable edge list whose
// header records the graph kind, so directedness and weights survive the
// round trip through ReadWorkload. The AsPartitioned default is
// deliberately NOT serialized: it is machine-local tuning (it tracks the
// reader's thread count, not the graph), so the loading side declares its
// own via Partitioned/AsPartitioned.
func WriteWorkload(dst io.Writer, w *Workload) error {
	return graph.WriteEdgeListKind(dst, w.g, w.directed)
}

// ReadWorkload parses an edge list written by WriteWorkload (or
// WriteEdgeList), restoring the recorded graph kind: the returned handle
// is directed and/or weighted exactly as the written one was (the
// partition default is not persisted; see WriteWorkload).
func ReadWorkload(src io.Reader) (*Workload, error) {
	g, directed, err := graph.ReadEdgeListKind(src)
	if err != nil {
		return nil, err
	}
	var opts []WorkloadOption
	if directed {
		opts = append(opts, AsDirected())
	}
	if g.Weighted() {
		opts = append(opts, AsWeighted())
	}
	return NewWorkload(g, opts...), nil
}
