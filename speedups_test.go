package pushpull_test

// Cross-validation of the kernel raw-speed layout options: degree-sorted
// and hub-cached runs must produce payloads identical to the plain
// kernels (pr ranks to 1e-9, bfs trees valid with equal levels, gc proper
// colorings), the options must participate in the Engine's cache key and
// the workload content ID, and the derived views must be memoized.

import (
	"context"
	"errors"
	"testing"

	"pushpull"
)

// skewedGraph builds the high-skew RMAT workload hub caching targets.
func skewedGraph(t testing.TB) *pushpull.Graph {
	t.Helper()
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(10, 8, 42))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// directedSkewedGraph builds a directed pseudo-random graph.
func directedSkewedGraph(t testing.TB, n int, seed uint64) *pushpull.Graph {
	t.Helper()
	b := pushpull.NewBuilder(n).Directed()
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 8*n; i++ {
		// Square one endpoint's range to skew the in-degree distribution.
		u := pushpull.V(next() % uint64(n))
		v := pushpull.V((next() % uint64(n)) * (next() % uint64(n)) / uint64(n))
		b.AddEdge(u, v)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func ranksOf(t *testing.T, rep *pushpull.Report) []float64 {
	t.Helper()
	ranks, ok := rep.Result.([]float64)
	if !ok {
		t.Fatalf("pr payload is %T, want []float64", rep.Result)
	}
	return ranks
}

func TestPRLayoutOptionsCrossValidate(t *testing.T) {
	g := skewedGraph(t)
	base, err := pushpull.Run(context.Background(), g, "pr", pushpull.WithDirection(pushpull.Pull))
	if err != nil {
		t.Fatal(err)
	}
	want := ranksOf(t, base)
	variants := map[string][]pushpull.Option{
		"degree-sorted":     {pushpull.WithDegreeSorted()},
		"hub-cached":        {pushpull.WithHubCache(64)},
		"hub-cached-auto":   {pushpull.WithHubCache(0)},
		"sorted+hub-cached": {pushpull.WithDegreeSorted(), pushpull.WithHubCache(64)},
	}
	for name, opts := range variants {
		w := pushpull.NewWorkload(g)
		rep, err := pushpull.Run(context.Background(), w, "pr",
			append(opts, pushpull.WithDirection(pushpull.Pull), pushpull.WithThreads(4))...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := pushpull.MaxDiff(want, ranksOf(t, rep)); d > 1e-9 {
			t.Fatalf("%s: ranks diverge from plain pull by %g", name, d)
		}
	}
	// Workload-level declarations behave identically to per-run options.
	w := pushpull.NewWorkload(g, pushpull.AsDegreeSorted(), pushpull.AsHubCached(0))
	rep, err := pushpull.Run(context.Background(), w, "pr", pushpull.WithDirection(pushpull.Pull))
	if err != nil {
		t.Fatal(err)
	}
	if d := pushpull.MaxDiff(want, ranksOf(t, rep)); d > 1e-9 {
		t.Fatalf("declared workload: ranks diverge by %g", d)
	}
	// Push runs ignore the hub cache but honor the degree sort.
	rep, err = pushpull.Run(context.Background(), w, "pr", pushpull.WithDirection(pushpull.Push))
	if err != nil {
		t.Fatal(err)
	}
	if d := pushpull.MaxDiff(want, ranksOf(t, rep)); d > 1e-6 {
		t.Fatalf("declared workload push: ranks diverge by %g", d)
	}
}

func TestPRDirectedLayoutOptionsCrossValidate(t *testing.T) {
	g := directedSkewedGraph(t, 700, 9)
	base, err := pushpull.Run(context.Background(), pushpull.Directed(g), "pr",
		pushpull.WithDirection(pushpull.Pull))
	if err != nil {
		t.Fatal(err)
	}
	want := ranksOf(t, base)
	for name, opts := range map[string][]pushpull.Option{
		"degree-sorted":     {pushpull.WithDegreeSorted()},
		"hub-cached":        {pushpull.WithHubCache(32)},
		"sorted+hub-cached": {pushpull.WithDegreeSorted(), pushpull.WithHubCache(32)},
	} {
		rep, err := pushpull.Run(context.Background(), pushpull.Directed(g), "pr",
			append(opts, pushpull.WithDirection(pushpull.Pull), pushpull.WithThreads(3))...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := pushpull.MaxDiff(want, ranksOf(t, rep)); d > 1e-9 {
			t.Fatalf("%s: directed ranks diverge by %g", name, d)
		}
	}
}

// checkBFSTree validates a tree against the graph and reference levels:
// same reachability and depth, every non-root parent a real neighbor one
// level up.
func checkBFSTree(t *testing.T, g *pushpull.Graph, root pushpull.V, tree *pushpull.BFSTree, want []int32) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if tree.Level[v] != want[v] {
			t.Fatalf("level[%d] = %d, want %d", v, tree.Level[v], want[v])
		}
		p := tree.Parent[v]
		if pushpull.V(v) == root || p < 0 {
			continue
		}
		if tree.Level[v] != tree.Level[p]+1 {
			t.Fatalf("parent[%d]=%d: level %d vs parent level %d", v, p, tree.Level[v], tree.Level[p])
		}
		if !g.HasEdge(p, pushpull.V(v)) {
			t.Fatalf("parent[%d]=%d is not a neighbor", v, p)
		}
	}
}

func TestBFSLayoutOptionsCrossValidate(t *testing.T) {
	g := skewedGraph(t)
	base, err := pushpull.Run(context.Background(), g, "bfs", pushpull.WithSource(0))
	if err != nil {
		t.Fatal(err)
	}
	want := base.Result.(*pushpull.BFSTree).Level
	for _, dir := range []pushpull.Direction{pushpull.Auto, pushpull.Push, pushpull.Pull} {
		for name, opts := range map[string][]pushpull.Option{
			"degree-sorted":     {pushpull.WithDegreeSorted()},
			"hub-cached":        {pushpull.WithHubCache(128)},
			"sorted+hub-cached": {pushpull.WithDegreeSorted(), pushpull.WithHubCache(128)},
		} {
			rep, err := pushpull.Run(context.Background(), pushpull.NewWorkload(g), "bfs",
				append(opts, pushpull.WithSource(0), pushpull.WithDirection(dir), pushpull.WithThreads(4))...)
			if err != nil {
				t.Fatalf("%s %v: %v", name, dir, err)
			}
			checkBFSTree(t, g, 0, rep.Result.(*pushpull.BFSTree), want)
		}
	}
}

func TestGCLayoutOptionsProperColoring(t *testing.T) {
	g := skewedGraph(t)
	// Explicit degree sort, workloads declaring both layout options, and
	// the hub-cached pull paths (Boman conflict scan and FE discovery).
	runs := []struct {
		name string
		on   pushpull.Runnable
		opts []pushpull.Option
	}{
		{"explicit-ds", pushpull.NewWorkload(g), []pushpull.Option{pushpull.WithDegreeSorted()}},
		{"declared", pushpull.NewWorkload(g, pushpull.AsDegreeSorted(), pushpull.AsHubCached(64)), nil},
		{"declared-pull", pushpull.NewWorkload(g, pushpull.AsDegreeSorted()),
			[]pushpull.Option{pushpull.WithDirection(pushpull.Pull)}},
		{"hub-pull", pushpull.NewWorkload(g),
			[]pushpull.Option{pushpull.WithHubCache(128), pushpull.WithDirection(pushpull.Pull)}},
		{"sorted+hub-pull", pushpull.NewWorkload(g),
			[]pushpull.Option{pushpull.WithDegreeSorted(), pushpull.WithHubCache(128), pushpull.WithDirection(pushpull.Pull)}},
		{"hub-fe", pushpull.NewWorkload(g),
			[]pushpull.Option{pushpull.WithHubCache(128), pushpull.WithSwitchPolicy(&pushpull.GenericSwitch{Threshold: 1})}},
	}
	for _, r := range runs {
		rep, err := pushpull.Run(context.Background(), r.on, "gc", r.opts...)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		res := rep.Result.(*pushpull.ColoringResult)
		if err := pushpull.ValidateColoring(g, res.Colors); err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
	}
}

func TestLayoutOptionCapsErrors(t *testing.T) {
	g := skewedGraph(t)
	wg := pushpull.WithUniformWeights(g, 1, 2, 7)
	if _, err := pushpull.Run(context.Background(), pushpull.Weighted(wg), "sssp",
		pushpull.WithDegreeSorted()); !errors.Is(err, pushpull.ErrDegreeSortUnsupported) {
		t.Fatalf("sssp WithDegreeSorted: %v, want ErrDegreeSortUnsupported", err)
	}
	if _, err := pushpull.Run(context.Background(), pushpull.Weighted(wg), "mst",
		pushpull.WithHubCache(8)); !errors.Is(err, pushpull.ErrHubCacheUnsupported) {
		t.Fatalf("mst WithHubCache: %v, want ErrHubCacheUnsupported", err)
	}
	if _, err := pushpull.Run(context.Background(), g, "pr",
		pushpull.WithDegreeSorted(), pushpull.WithPartitionAwareness()); !errors.Is(err, pushpull.ErrBadOption) {
		t.Fatalf("pr degree-sort + PA: %v, want ErrBadOption", err)
	}
	// gc-cr supports neither layout option (gc and gc-fe now take both).
	if _, err := pushpull.Run(context.Background(), g, "gc-cr",
		pushpull.WithHubCache(8)); !errors.Is(err, pushpull.ErrHubCacheUnsupported) {
		t.Fatalf("gc-cr WithHubCache: %v, want ErrHubCacheUnsupported", err)
	}
	// A workload-level declaration is ambient: algorithms without support
	// ignore it instead of failing.
	w := pushpull.NewWorkload(wg, pushpull.AsWeighted(), pushpull.AsDegreeSorted(), pushpull.AsHubCached(8))
	if _, err := pushpull.Run(context.Background(), w, "mst"); err != nil {
		t.Fatalf("mst on declared workload: %v", err)
	}
}

func TestLayoutViewsMemoized(t *testing.T) {
	g := skewedGraph(t)
	w := pushpull.NewWorkload(g, pushpull.AsDegreeSorted(), pushpull.AsHubCached(64))
	for i := 0; i < 3; i++ {
		if _, err := pushpull.Run(context.Background(), w, "pr", pushpull.WithDirection(pushpull.Pull)); err != nil {
			t.Fatal(err)
		}
		if _, err := pushpull.Run(context.Background(), w, "bfs", pushpull.WithSource(0)); err != nil {
			t.Fatal(err)
		}
	}
	b := w.Builds()
	if b.DegreeSorts != 1 {
		t.Fatalf("DegreeSorts = %d, want 1", b.DegreeSorts)
	}
	// pr pull and bfs share the same (k, sorted, in=false) split.
	if b.HubSplits != 1 {
		t.Fatalf("HubSplits = %d, want 1", b.HubSplits)
	}
}

func TestLayoutOptionsInCacheKeyAndID(t *testing.T) {
	g := undirectedGraph(t, 400, 5)
	// Workload declarations are part of the content ID; plain handles keep
	// matching each other.
	plain, plain2 := pushpull.NewWorkload(g), pushpull.NewWorkload(g)
	if plain.ID() != plain2.ID() {
		t.Fatal("identical plain workloads disagree on ID")
	}
	ds := pushpull.NewWorkload(g, pushpull.AsDegreeSorted())
	hub8 := pushpull.NewWorkload(g, pushpull.AsHubCached(8))
	hub16 := pushpull.NewWorkload(g, pushpull.AsHubCached(16))
	ids := map[string]string{plain.ID(): "plain", ds.ID(): "ds", hub8.ID(): "hub8", hub16.ID(): "hub16"}
	if len(ids) != 4 {
		t.Fatalf("layout declarations collide in content IDs: %v", ids)
	}

	// Run options are part of the Engine cache key: a different option is
	// a different key, the same option hits.
	e := pushpull.NewEngine()
	w := pushpull.NewWorkload(g)
	run := func(opts ...pushpull.Option) *pushpull.Report {
		t.Helper()
		rep, err := e.Run(context.Background(), w, "pr", opts...)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := run(pushpull.WithHubCache(8)); rep.Stats.CacheHit {
		t.Fatal("first hub-cached run cannot be a cache hit")
	}
	if rep := run(pushpull.WithHubCache(8)); !rep.Stats.CacheHit {
		t.Fatal("identical hub-cached run must hit the cache")
	}
	if rep := run(pushpull.WithHubCache(16)); rep.Stats.CacheHit {
		t.Fatal("different hub size must be a different cache key")
	}
	if rep := run(pushpull.WithDegreeSorted()); rep.Stats.CacheHit {
		t.Fatal("degree-sorted run must not share the plain key")
	}
	if rep := run(pushpull.WithDegreeSorted()); !rep.Stats.CacheHit {
		t.Fatal("identical degree-sorted run must hit the cache")
	}
	if rep := run(); rep.Stats.CacheHit {
		t.Fatal("plain run must not share the layout-optioned keys")
	}
}
