package pushpull_test

// Workload-handle tests: the graph-kind API redesign. Directed PageRank
// through the facade cross-validates against the sequential directed
// reference; the memoized derived views (transpose, PA split, stats) are
// provably built once per handle; the capability gate returns the typed
// precondition errors before any worker runs.

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"pushpull"
	"pushpull/internal/algo/pr"
)

// directedGraph builds a deterministic pseudo-random directed graph with
// asymmetric adjacency (so transpose ≠ graph).
func directedGraph(t testing.TB, n int, weighted bool) *pushpull.Graph {
	t.Helper()
	b := pushpull.NewBuilder(n).Directed()
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 6*n; i++ {
		u := pushpull.V(next() % uint64(n))
		v := pushpull.V(next() % uint64(n))
		if weighted {
			b.AddEdgeW(u, v, 1+float32(next()%100))
		} else {
			b.AddEdge(u, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestFacadeDirectedPRMatchesSequential is the acceptance cross-check:
// Run on Directed(g) dispatches pr to the §4.8 kernels, and push, pull
// and the probed variants all match pr.SequentialDirected within 1e-9.
func TestFacadeDirectedPRMatchesSequential(t *testing.T) {
	g := directedGraph(t, 700, false)
	want := pr.SequentialDirected(pr.NewDirected(g), pr.Options{Iterations: 15})
	for _, dir := range []pushpull.Direction{pushpull.Push, pushpull.Pull, pushpull.Auto} {
		w := pushpull.Directed(g)
		rep := run(t, w, "pr", pushpull.WithDirection(dir),
			pushpull.WithThreads(3), pushpull.WithIterations(15))
		if d := pushpull.MaxDiff(rep.Ranks(), want); d > 1e-9 {
			t.Errorf("directed pr %v diverges from SequentialDirected by %g", dir, d)
		}
		if rep.Stats.Iterations != 15 || len(rep.Directions) != 15 {
			t.Errorf("directed pr %v: %d iterations, %d trace entries, want 15/15",
				dir, rep.Stats.Iterations, len(rep.Directions))
		}
		// WithProbes behaves identically to the undirected path: counters
		// attached, payload unchanged.
		probed := run(t, w, "pr", pushpull.WithDirection(dir),
			pushpull.WithThreads(3), pushpull.WithIterations(15), pushpull.WithProbes())
		if probed.Counters == nil || probed.Counters.Get(pushpull.Reads) == 0 {
			t.Fatalf("probed directed pr %v returned no counters", dir)
		}
		if d := pushpull.MaxDiff(probed.Ranks(), want); d > 1e-9 {
			t.Errorf("probed directed pr %v diverges from SequentialDirected by %g", dir, d)
		}
	}
	// The §4 asymmetry carries over: directed push pays atomics per
	// out-arc, directed pull pays none.
	w := pushpull.Directed(g)
	push := run(t, w, "pr", pushpull.WithDirection(pushpull.Push),
		pushpull.WithIterations(1), pushpull.WithProbes())
	pull := run(t, w, "pr", pushpull.WithDirection(pushpull.Pull),
		pushpull.WithIterations(1), pushpull.WithProbes())
	if got := push.Counters.Get(pushpull.Atomics); got == 0 {
		t.Error("directed push pr issued no atomics")
	}
	if got := pull.Counters.Get(pushpull.Atomics); got != 0 {
		t.Errorf("directed pull pr issued %d atomics, want 0", got)
	}
}

// TestWorkloadMemoizesTranspose is the acceptance memoization check: the
// transpose behind directed pull is built exactly once across N runs on
// the same Workload, and repeated accessor calls return the same view.
func TestWorkloadMemoizesTranspose(t *testing.T) {
	g := directedGraph(t, 400, false)
	w := pushpull.Directed(g)
	if got := w.Builds().Transposes; got != 0 {
		t.Fatalf("fresh workload already built %d transposes", got)
	}
	for i := 0; i < 3; i++ {
		run(t, w, "pr", pushpull.WithDirection(pushpull.Pull), pushpull.WithIterations(2))
	}
	if got := w.Builds().Transposes; got != 1 {
		t.Fatalf("3 pull runs built the transpose %d times, want exactly 1", got)
	}
	if w.Transpose() != w.Transpose() {
		t.Error("Transpose() returns distinct views across calls")
	}
	// Pushing never needs the in-view; a fresh handle must not build it.
	w2 := pushpull.Directed(g)
	run(t, w2, "pr", pushpull.WithDirection(pushpull.Push), pushpull.WithIterations(2))
	if got := w2.Builds().Transposes; got != 0 {
		t.Errorf("push-only run built %d transposes, want 0 (lazy)", got)
	}
}

// TestWorkloadMemoizesPAAndStats: the Partition-Awareness split is built
// once per distinct partition count across repeated runs, and Stats once
// per handle.
func TestWorkloadMemoizesPAAndStats(t *testing.T) {
	g := testGraph(t)
	w := pushpull.Partitioned(g, 3)
	for i := 0; i < 3; i++ {
		run(t, w, "pr", pushpull.WithPartitionAwareness(), pushpull.WithThreads(3),
			pushpull.WithIterations(2))
	}
	if got := w.Builds().PASplits; got != 1 {
		t.Fatalf("3 PA runs built %d splits, want exactly 1", got)
	}
	if w.PA(3) != w.PA(3) {
		t.Error("PA(3) returns distinct layouts across calls")
	}
	// A different partition count is a different split, memoized separately.
	run(t, w, "pr", pushpull.WithPartitionAwareness(), pushpull.WithPartitions(5),
		pushpull.WithThreads(5), pushpull.WithIterations(2))
	if got := w.Builds().PASplits; got != 2 {
		t.Errorf("second partition count built %d splits total, want 2", got)
	}
	// WithPartitions beats the workload default; without it the
	// AsPartitioned count feeds the PA split.
	if w.PA(3).Part.P != 3 || w.PA(5).Part.P != 5 {
		t.Error("memoized splits keyed to the wrong partition counts")
	}
	w.Stats()
	w.Stats()
	if got := w.Builds().Stats; got != 1 {
		t.Errorf("Stats() built %d times, want 1", got)
	}
}

// TestNeedsWeightsTyped is the acceptance fail-fast check: sssp and mst on
// an unweighted workload return ErrNeedsWeights from the capability gate —
// before any goroutine spawns — and a Weighted claim over a weightless
// graph fails the same way for every algorithm.
func TestNeedsWeightsTyped(t *testing.T) {
	g := testGraph(t)
	for _, algo := range []string{"sssp", "mst"} {
		rep, err := pushpull.Run(context.Background(), g, algo, pushpull.WithSource(0))
		if !errors.Is(err, pushpull.ErrNeedsWeights) {
			t.Errorf("%s on unweighted workload: err = %v, want ErrNeedsWeights", algo, err)
		}
		if rep != nil {
			t.Errorf("%s on unweighted workload returned a report alongside the precondition error", algo)
		}
	}
	// The claim direction: Weighted(g) promises weights the graph lacks.
	if _, err := pushpull.Run(context.Background(), pushpull.Weighted(g), "pr"); !errors.Is(err, pushpull.ErrNeedsWeights) {
		t.Errorf("pr on Weighted(unweighted graph): err = %v, want ErrNeedsWeights", err)
	}
	// And the weighted path still runs.
	run(t, pushpull.Weighted(weightedGraph(t)), "sssp", pushpull.WithSource(0))
}

// TestDirectedUnsupportedTyped: algorithms without Caps.Directed reject a
// directed workload with the typed error.
func TestDirectedUnsupportedTyped(t *testing.T) {
	g := directedGraph(t, 200, true)
	for _, algo := range []string{"tc", "bfs", "gc", "bc", "mst", "dist-pr-mp"} {
		_, err := pushpull.Run(context.Background(), pushpull.Directed(g), algo,
			pushpull.WithSource(0))
		if !errors.Is(err, pushpull.ErrDirectedUnsupported) {
			t.Errorf("%s on directed workload: err = %v, want ErrDirectedUnsupported", algo, err)
		}
	}
	// Directed pr + partition awareness is the one in-algorithm gap.
	if _, err := pushpull.Run(context.Background(), pushpull.Directed(g), "pr",
		pushpull.WithPartitionAwareness()); !errors.Is(err, pushpull.ErrPartitionAwareUnsupported) {
		t.Errorf("directed pr + PA: err = %v, want ErrPartitionAwareUnsupported", err)
	}
}

// capsStub is an externally registered algorithm with the zero (most
// restrictive) capability set.
type capsStub struct{}

func (capsStub) Name() string        { return "caps-stub-algo" }
func (capsStub) Describe() string    { return "capability-gate stub" }
func (capsStub) Caps() pushpull.Caps { return pushpull.Caps{} }
func (capsStub) Run(context.Context, *pushpull.Workload, *pushpull.Config) (*pushpull.Report, error) {
	return &pushpull.Report{}, nil
}

// TestCapsGateForExternalAlgorithms: the engine enforces Caps uniformly,
// including for algorithms registered outside the package.
func TestCapsGateForExternalAlgorithms(t *testing.T) {
	if _, err := pushpull.Lookup("caps-stub-algo"); err != nil {
		if err := pushpull.Register(capsStub{}); err != nil {
			t.Fatal(err)
		}
	}
	g := testGraph(t)
	if _, err := pushpull.Run(context.Background(), g, "caps-stub-algo",
		pushpull.WithProbes()); !errors.Is(err, pushpull.ErrProbesUnsupported) {
		t.Errorf("probes on probe-less algorithm: err = %v, want ErrProbesUnsupported", err)
	}
	if _, err := pushpull.Run(context.Background(), g, "caps-stub-algo",
		pushpull.WithPartitionAwareness()); !errors.Is(err, pushpull.ErrPartitionAwareUnsupported) {
		t.Errorf("PA on PA-less algorithm: err = %v, want ErrPartitionAwareUnsupported", err)
	}
	if _, err := pushpull.Run(context.Background(), g, "caps-stub-algo"); err != nil {
		t.Errorf("plain run of the stub failed: %v", err)
	}
}

// nonGraphRunnable satisfies the Runnable shape without being a *Graph or
// *Workload; Run must reject it rather than guess.
type nonGraphRunnable struct{}

func (nonGraphRunnable) N() int   { return 1 }
func (nonGraphRunnable) M() int64 { return 0 }

func TestRunnableResolution(t *testing.T) {
	// Bare *Graph auto-wraps (the whole existing call surface).
	run(t, testGraph(t), "pr", pushpull.WithIterations(1))
	if _, err := pushpull.Run(context.Background(), nil, "pr"); err == nil {
		t.Error("Run on nil Runnable succeeded")
	}
	var nilW *pushpull.Workload
	if _, err := pushpull.Run(context.Background(), nilW, "pr"); err == nil {
		t.Error("Run on nil *Workload succeeded")
	}
	if _, err := pushpull.Run(context.Background(), nonGraphRunnable{}, "pr"); err == nil {
		t.Error("Run on a non-graph Runnable succeeded")
	}
}

// TestWorkloadRoundTrip: a directed weighted workload written with
// WriteWorkload is restored by ReadWorkload with kind, adjacency and
// weights intact — the edge-list fidelity satellite at the facade level.
func TestWorkloadRoundTrip(t *testing.T) {
	g := directedGraph(t, 120, true)
	w := pushpull.Directed(g, pushpull.AsWeighted())
	var buf bytes.Buffer
	if err := pushpull.WriteWorkload(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := pushpull.ReadWorkload(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsDirected() {
		t.Fatal("round trip lost directedness")
	}
	if !got.HasWeights() {
		t.Fatal("round trip lost weights")
	}
	gg := got.Graph()
	if gg.N() != g.N() || gg.M() != g.M() {
		t.Fatalf("round trip changed shape: n %d→%d, m %d→%d", g.N(), gg.N(), g.M(), gg.M())
	}
	for v := pushpull.V(0); int(v) < g.N(); v++ {
		a, b := g.Neighbors(v), gg.Neighbors(v)
		wa, wb := g.NeighborWeights(v), gg.NeighborWeights(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: degree %d→%d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] || wa[i] != wb[i] {
				t.Fatalf("vertex %d arc %d: (%d,%g)→(%d,%g)", v, i, a[i], wa[i], b[i], wb[i])
			}
		}
	}
	// The restored directed workload computes the same directed ranks.
	want := run(t, w, "pr", pushpull.WithIterations(5))
	have := run(t, got, "pr", pushpull.WithIterations(5))
	if d := pushpull.MaxDiff(want.Ranks(), have.Ranks()); d > 1e-12 {
		t.Errorf("ranks diverge by %g after round trip", d)
	}
}

// TestConcurrentRunSharedWorkload hammers one shared handle from many
// goroutines (run under -race in CI): every derived view — the directed
// transpose, the PA split, the stats — is still built exactly once, and
// every concurrent directed-pull run computes the same ranks.
func TestConcurrentRunSharedWorkload(t *testing.T) {
	g := directedGraph(t, 400, false)
	w := pushpull.Directed(g)
	want := run(t, pushpull.Directed(g), "pr", pushpull.WithIterations(8))

	const N = 8
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Pull forces the memoized transpose; Stats touches the Table 2
			// computation; both race against the N-1 sibling goroutines.
			rep, err := pushpull.Run(context.Background(), w, "pr",
				pushpull.WithDirection(pushpull.Pull), pushpull.WithIterations(8))
			if err != nil {
				t.Error(err)
				return
			}
			if d := pushpull.MaxDiff(rep.Ranks(), want.Ranks()); d > 1e-9 {
				t.Errorf("concurrent run diverges by %g", d)
			}
			_ = w.Stats()
			_ = w.ID()
		}()
	}
	wg.Wait()
	if b := w.Builds(); b.Transposes != 1 || b.Stats != 1 {
		t.Errorf("Builds() = %+v after %d concurrent runs, want one transpose and one stats build", b, N)
	}

	// The same property under an Engine with caching: concurrent identical
	// runs may race to fill the cache, but the handle still builds each
	// view once and every report agrees.
	eng := pushpull.NewEngine()
	w2 := pushpull.Partitioned(undirectedGraph(t, 400, 5), 4)
	var wg2 sync.WaitGroup
	for i := 0; i < N; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			rep, err := eng.Run(context.Background(), w2, "gc")
			if err != nil {
				t.Error(err)
				return
			}
			if err := pushpull.ValidateColoring(w2.Graph(), rep.Colors()); err != nil {
				t.Errorf("concurrent cached gc: %v", err)
			}
		}()
	}
	wg2.Wait()
}
