package pushpull

// Public re-exports of the library's vocabulary types and graph-building
// surface. The implementation lives under internal/; these aliases are
// the supported way for external callers to name those types, build
// workloads, and read results without reaching into internal packages.

import (
	"io"

	"pushpull/internal/algo/bc"
	"pushpull/internal/algo/bfs"
	"pushpull/internal/algo/gc"
	"pushpull/internal/algo/mst"
	"pushpull/internal/algo/sssp"
	"pushpull/internal/algo/tc"
	"pushpull/internal/core"
	"pushpull/internal/counters"
	"pushpull/internal/gen"
	"pushpull/internal/graph"
	"pushpull/internal/sched"
)

// Core vocabulary.
type (
	// Graph is the CSR adjacency structure every algorithm consumes.
	Graph = graph.CSR
	// V is a vertex id.
	V = graph.V
	// Edge is one (possibly weighted) edge.
	Edge = graph.Edge
	// Builder accumulates edges and produces a Graph.
	Builder = graph.Builder
	// Partition is a 1D block partition of the vertex set over threads.
	Partition = graph.Partition
	// PAGraph is a Graph with the Partition-Awareness local/remote
	// adjacency split (§5, Algorithm 8).
	PAGraph = graph.PAGraph
	// DegreeSortedView is a Graph permuted by descending degree with the
	// permutation and its inverse (WithDegreeSorted / AsDegreeSorted).
	DegreeSortedView = graph.DegreeSorted
	// HubSplit is a pull view split into a dense top-k hub segment and a
	// residual segment (WithHubCache / AsHubCached).
	HubSplit = graph.HubSplit
	// GraphStats carries the Table 2 statistics (n, m, d̄, d̂, D, ...).
	GraphStats = graph.Stats
	// RunStats captures what one run did: direction, iteration count and
	// timings, and whether the run was cancelled mid-way.
	RunStats = core.RunStats
	// Schedule selects the parallel-loop schedule.
	Schedule = sched.Schedule
	// SwitchPolicy decides when an adaptive run changes direction or
	// falls back to a sequential scheme.
	SwitchPolicy = core.SwitchPolicy
	// GenericSwitch flips push↔pull when conflicts dominate (§5).
	GenericSwitch = core.GenericSwitch
	// GreedySwitch falls back to the optimized sequential scheme once
	// little work remains (§5).
	GreedySwitch = core.GreedySwitch
	// NeverSwitch is the identity policy.
	NeverSwitch = core.NeverSwitch
	// CounterReport aggregates instrumented-run event counts.
	CounterReport = counters.Report
	// CounterEvent identifies one counted event class.
	CounterEvent = counters.Event
	// RMATParams parameterizes the RMAT generator.
	RMATParams = gen.RMATParams
	// SuiteGraph describes one workload of the Table 2 stand-in suite.
	SuiteGraph = gen.SuiteGraph
)

// Loop schedules.
const (
	// Static divides the index range into contiguous per-worker blocks.
	Static = sched.Static
	// Dynamic hands out chunks from a shared cursor (skew-balancing).
	Dynamic = sched.Dynamic
)

// Counter events readable from a CounterReport.
const (
	Atomics       = counters.Atomics
	Locks         = counters.Locks
	Reads         = counters.Reads
	Writes        = counters.Writes
	Messages      = counters.Messages
	RemoteReads   = counters.RemoteReads
	RemoteWrites  = counters.RemoteWrites
	RemoteAtomics = counters.RemoteAtomics
)

// Algorithm result payloads (Report.Result concrete types).
type (
	// BFSTree is the bfs payload: parent and level per vertex.
	BFSTree = bfs.Tree
	// SSSPResult is the sssp payload: distances and epoch/inner counts.
	SSSPResult = sssp.Result
	// ColoringResult is the gc payload: colors and iteration count.
	ColoringResult = gc.Result
	// BCResult is the bc payload: centrality scores and phase timings.
	BCResult = bc.Result
	// MSTResult is the mst payload: tree edges, weight, phase timings.
	MSTResult = mst.Result
)

// ---- graph construction ----

// NewBuilder returns an edge accumulator over n vertices (undirected,
// deduplicated by default; see Builder's modifiers).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// NewPartition block-partitions n vertices over p owners.
func NewPartition(n, p int) Partition { return graph.NewPartition(n, p) }

// BuildPA precomputes the Partition-Awareness local/remote split.
func BuildPA(g *Graph, part Partition) *PAGraph { return graph.BuildPA(g, part) }

// ComputeStats derives the Table 2 statistics of a graph.
func ComputeStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// WriteEdgeList writes g as a portable edge list. The header records the
// graph kind — directedness (detected with a weight-aware symmetry check)
// and weights — so directed and weighted graphs survive the round trip
// through ReadEdgeList. For a Workload, WriteWorkload skips the detection
// and uses the declared kind.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadEdgeList parses an edge list written by WriteEdgeList, restoring
// the recorded directedness and weights; ReadWorkload additionally lifts
// the kind into a Workload handle.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ---- workload generators ----

// DefaultRMAT returns the standard RMAT parameterization.
func DefaultRMAT(scale, edgeFactor int, seed uint64) RMATParams {
	return gen.DefaultRMAT(scale, edgeFactor, seed)
}

// RMAT generates a power-law RMAT graph.
func RMAT(p RMATParams) (*Graph, error) { return gen.RMAT(p) }

// ErdosRenyi generates a uniform random graph with the given mean degree.
func ErdosRenyi(n int, avgDeg float64, seed uint64) (*Graph, error) {
	return gen.ErdosRenyi(n, avgDeg, seed)
}

// RoadGrid generates a road-network-like grid with missing segments.
func RoadGrid(rows, cols int, keep float64, seed uint64) (*Graph, error) {
	return gen.RoadGrid(rows, cols, keep, seed)
}

// Community generates a planted-community social graph.
func Community(n, c int, dIn, dOut float64, seed uint64) (*Graph, error) {
	return gen.Community(n, c, dIn, dOut, seed)
}

// PrefAttach generates a preferential-attachment graph.
func PrefAttach(n, k int, seed uint64) (*Graph, error) { return gen.PrefAttach(n, k, seed) }

// WithUniformWeights attaches uniform edge weights in [lo, hi).
func WithUniformWeights(g *Graph, lo, hi float32, seed uint64) *Graph {
	return gen.WithUniformWeights(g, lo, hi, seed)
}

// NamedGraph builds one of the Table 2 stand-in suite graphs by id
// (orc, pok, ljn, am, rca, rmat, er).
func NamedGraph(name string, scale float64, seed uint64) (*Graph, error) {
	return gen.Named(name, scale, seed)
}

// NamedWeightedGraph is NamedGraph with uniform edge weights attached.
func NamedWeightedGraph(name string, scale float64, seed uint64) (*Graph, error) {
	return gen.NamedWeighted(name, scale, seed)
}

// SuiteGraphs describes every suite workload.
func SuiteGraphs() []SuiteGraph { return gen.Suite() }

// ---- result helpers ----

// Human formats a count in the paper's human-readable style (1.2M, ...).
func Human(n int64) string { return counters.Human(n) }

// MaxDiff returns the largest absolute element difference between two
// float vectors, treating a pair of +Inf values (unreached vertices) as
// equal — the cross-validation metric used throughout.
func MaxDiff(a, b []float64) float64 { return sssp.MaxDiff(a, b) }

// SumFloats returns Σaᵢ (e.g. total rank mass, ≈1 for PageRank).
func SumFloats(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v
	}
	return s
}

// EqualCounts reports whether two count vectors match exactly.
func EqualCounts(a, b []int64) bool { return tc.Equal(a, b) }

// TriangleTotal returns the number of distinct triangles from per-vertex
// counts: Σ tc(v) / 3.
func TriangleTotal(counts []int64) int64 { return tc.Total(counts) }

// ValidateColoring errors on an uncolored vertex or monochromatic edge.
func ValidateColoring(g *Graph, colors []int32) error { return gc.Validate(g, colors) }

// CountColors returns the number of distinct colors used.
func CountColors(colors []int32) int { return gc.CountColors(colors) }
