// Package api holds the JSON wire types shared by every HTTP-facing
// layer of the system: the worker front (pushpull/serve), the cluster
// router (pushpull/cluster), and the async job subsystem
// (pushpull/jobs). A run request, its options projection, and the
// lowered Report response have exactly one JSON shape — a job's stored
// result is byte-identical to what a synchronous POST /run would have
// returned, so clients (and the cluster router) can treat the two paths
// interchangeably.
//
// pushpull/serve re-exports these types under their original names
// (serve.RunRequest = api.RunRequest, ...), so pre-jobs clients keep
// compiling unchanged.
package api

import (
	"fmt"
	"math"
	"strconv"

	"pushpull"
)

// RunRequest is the POST /run body.
type RunRequest struct {
	// Graph names a workload registered on the engine (PUT /graphs or
	// server-side preload).
	Graph string `json:"graph"`
	// Algorithm is the registry name ("pr", "bfs", "dist-pr-mp", ...).
	Algorithm string `json:"algorithm"`
	// Options carries the run options; zero values mean the engine
	// defaults, exactly like the With* functional options.
	Options RunOptions `json:"options"`
}

// RunOptions is the JSON projection of the engine's functional options.
// Unknown fields are rejected so a typo cannot silently run defaults.
type RunOptions struct {
	Direction      string   `json:"direction,omitempty"` // "push", "pull", "auto"
	Threads        int      `json:"threads,omitempty"`
	Iterations     int      `json:"iterations,omitempty"`
	MaxIters       int      `json:"max_iters,omitempty"`
	Source         int      `json:"source,omitempty"`
	Sources        []int    `json:"sources,omitempty"`
	Delta          float64  `json:"delta,omitempty"`
	Damping        *float64 `json:"damping,omitempty"`
	Partitions     int      `json:"partitions,omitempty"`
	PartitionAware bool     `json:"partition_aware,omitempty"`
	// OutOfCore asks for the block-sequential out-of-core kernels even on
	// an in-memory graph (graphs stored past the server's memory budget
	// run out-of-core regardless, with no option needed).
	OutOfCore bool `json:"out_of_core,omitempty"`
	Ranks     int  `json:"ranks,omitempty"`
	// TimeoutMS bounds the run server-side; the request context already
	// cancels it when the client disconnects.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ToOptions lowers the JSON projection into the engine's functional
// options, rejecting values no With* function would accept.
func (o *RunOptions) ToOptions() ([]pushpull.Option, error) {
	var opts []pushpull.Option
	switch o.Direction {
	case "", "auto":
	case "push":
		opts = append(opts, pushpull.WithDirection(pushpull.Push))
	case "pull":
		opts = append(opts, pushpull.WithDirection(pushpull.Pull))
	default:
		return nil, fmt.Errorf(`bad "direction" %q (push, pull, auto)`, o.Direction)
	}
	if o.Threads != 0 {
		opts = append(opts, pushpull.WithThreads(o.Threads))
	}
	if o.Iterations != 0 {
		opts = append(opts, pushpull.WithIterations(o.Iterations))
	}
	if o.MaxIters != 0 {
		opts = append(opts, pushpull.WithMaxIters(o.MaxIters))
	}
	if o.Source != 0 {
		opts = append(opts, pushpull.WithSource(pushpull.V(o.Source)))
	}
	if len(o.Sources) > 0 {
		vs := make([]pushpull.V, len(o.Sources))
		for i, v := range o.Sources {
			vs[i] = pushpull.V(v)
		}
		opts = append(opts, pushpull.WithSources(vs))
	}
	if o.Delta != 0 {
		opts = append(opts, pushpull.WithDelta(o.Delta))
	}
	if o.Damping != nil {
		opts = append(opts, pushpull.WithDamping(*o.Damping))
	}
	if o.Partitions != 0 {
		opts = append(opts, pushpull.WithPartitions(o.Partitions))
	}
	if o.PartitionAware {
		opts = append(opts, pushpull.WithPartitionAwareness())
	}
	if o.OutOfCore {
		opts = append(opts, pushpull.WithOutOfCore())
	}
	if o.Ranks != 0 {
		opts = append(opts, pushpull.WithRanks(o.Ranks))
	}
	return opts, nil
}

// RunResponse is the POST /run body on success — and, verbatim, the
// stored result payload of a completed async job.
type RunResponse struct {
	Algorithm  string   `json:"algorithm"`
	Graph      string   `json:"graph"`
	Summary    string   `json:"summary"`
	Stats      RunStats `json:"stats"`
	Directions []string `json:"directions,omitempty"`
	// Ranks holds float payloads (pr ranks, bc scores, sssp distances);
	// non-finite entries — the +Inf distance of an unreached vertex —
	// are encoded as null.
	Ranks   Floats  `json:"ranks,omitempty"`
	Counts  []int64 `json:"counts,omitempty"`
	Colors  []int32 `json:"colors,omitempty"`
	Parents []int64 `json:"parents,omitempty"`
	Levels  []int32 `json:"levels,omitempty"`
}

// RunStats is the JSON projection of the report's RunStats.
type RunStats struct {
	Direction   string `json:"direction"`
	Iterations  int    `json:"iterations"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	QueueWaitNS int64  `json:"queue_wait_ns"`
	CacheHit    bool   `json:"cache_hit"`
	Coalesced   bool   `json:"coalesced"`
	Canceled    bool   `json:"canceled"`
}

// BuildResponse lowers a completed Report into the wire shape, labeled
// with the graph name the run was requested against.
func BuildResponse(graph string, rep *pushpull.Report) RunResponse {
	resp := RunResponse{
		Algorithm: rep.Algorithm,
		Graph:     graph,
		Summary:   rep.Summary(),
		Stats: RunStats{
			Direction:   statsDirection(rep),
			Iterations:  rep.Stats.Iterations,
			ElapsedNS:   int64(rep.Stats.Elapsed),
			QueueWaitNS: int64(rep.Stats.QueueWait),
			CacheHit:    rep.Stats.CacheHit,
			Coalesced:   rep.Stats.Coalesced,
			Canceled:    rep.Stats.Canceled,
		},
	}
	for _, d := range rep.Directions {
		resp.Directions = append(resp.Directions, d.String())
	}
	resp.Ranks = Floats(rep.Ranks())
	resp.Counts = rep.Counts()
	resp.Colors = rep.Colors()
	if t := rep.Tree(); t != nil {
		resp.Parents = make([]int64, len(t.Parent))
		for i, p := range t.Parent {
			resp.Parents[i] = int64(p)
		}
		resp.Levels = t.Level
	}
	return resp
}

// statsDirection names the run's direction in the trace's lowercase
// vocabulary: "push"/"pull" for uniform runs, "mixed" when a switching
// run flipped mid-way.
func statsDirection(rep *pushpull.Report) string {
	if len(rep.Directions) == 0 {
		// No trace (e.g. dist-* simulations): fall back to the stats
		// block's paper-style name, lowered to the API vocabulary.
		switch rep.Stats.Direction.String() {
		case "Pushing":
			return "push"
		case "Pulling":
			return "pull"
		}
		return "auto"
	}
	first := rep.Directions[0]
	for _, d := range rep.Directions[1:] {
		if d != first {
			return "mixed"
		}
	}
	return first.String()
}

// Floats is a float vector that marshals non-finite entries (NaN, ±Inf —
// e.g. the +Inf distances sssp assigns unreached vertices) as null,
// which encoding/json rejects outright in a plain []float64.
type Floats []float64

// MarshalJSON implements json.Marshaler.
func (f Floats) MarshalJSON() ([]byte, error) {
	if f == nil {
		return []byte("null"), nil
	}
	out := make([]byte, 0, 8*len(f)+2)
	out = append(out, '[')
	for i, v := range f {
		if i > 0 {
			out = append(out, ',')
		}
		if math.IsInf(v, 0) || math.IsNaN(v) {
			out = append(out, "null"...)
		} else {
			out = strconv.AppendFloat(out, v, 'g', -1, 64)
		}
	}
	return append(out, ']'), nil
}
