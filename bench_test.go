// Package pushpull's root benchmark harness: one testing.B benchmark per
// table and figure of the paper, each re-running the corresponding
// experiment end to end (workload generation is cached across iterations).
// Run with:
//
//	go test -bench=. -benchmem .
//
// Scale is deliberately small so the full sweep completes in minutes; use
// cmd/pushpull for the full-scale regeneration.
package pushpull_test

import (
	"context"
	"io"
	"testing"

	"pushpull"
	"pushpull/internal/harness"
)

// benchConfig is the shared small-scale configuration.
func benchConfig() harness.Config {
	return harness.Config{Threads: 0, Scale: 0.1, Seed: 42, Out: io.Discard}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	// Warm the workload cache outside the timed region.
	if err := e.Run(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_Stats regenerates the graph-suite statistics table.
func BenchmarkTable2_Stats(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable1_Counters regenerates the hardware-counter table on the
// simulated Sandy Bridge hierarchy (PR, TC, BGC, SSSP-Δ push/pull/+PA).
func BenchmarkTable1_Counters(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable3_PR_TC regenerates the PR time-per-iteration and TC
// total-time rows.
func BenchmarkTable3_PR_TC(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4_Machines regenerates the cross-machine PR model table.
func BenchmarkTable4_Machines(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkFig1_BGC regenerates the coloring per-iteration series.
func BenchmarkFig1_BGC(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2_SSSP regenerates the Δ-stepping series and Δ sweep.
func BenchmarkFig2_SSSP(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkFig3_DM regenerates the distributed strong-scaling series.
func BenchmarkFig3_DM(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4_MST regenerates the Borůvka phase series.
func BenchmarkFig4_MST(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5_BC regenerates the betweenness thread-scaling series.
func BenchmarkFig5_BC(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6_Strategies regenerates the acceleration-strategy panel
// (PR+PA times and BGC iteration counts).
func BenchmarkFig6_Strategies(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkWeakScaling regenerates the §6 weak-scaling companion series.
func BenchmarkWeakScaling(b *testing.B) { runExperiment(b, "weak") }

// BenchmarkAblation regenerates the schedule and PA-partition ablations.
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation") }

// BenchmarkPRAM_Primitives regenerates the §4 bound table and validates
// the executable PRAM machine.
func BenchmarkPRAM_Primitives(b *testing.B) { runExperiment(b, "pram") }

// BenchmarkLA_SpMV regenerates the §7.1 CSR/CSC cross-check.
func BenchmarkLA_SpMV(b *testing.B) { runExperiment(b, "la") }

// ---- serving-layer benchmarks: cached vs uncached Engine runs ----

// benchEngineRun times repeated identical PageRank requests against an
// Engine; the cached/uncached pair quantifies what the result cache buys
// a serving layer (the cached variant must come out ≥10x faster — it
// runs no kernel at all).
func benchEngineRun(b *testing.B, eng *pushpull.Engine) {
	b.Helper()
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(13, 8, 42))
	if err != nil {
		b.Fatal(err)
	}
	w := pushpull.NewWorkload(g)
	ctx := context.Background()
	opts := []pushpull.Option{pushpull.WithDirection(pushpull.Pull), pushpull.WithIterations(20)}
	// Warm outside the timed region (fills the cache when one exists).
	if _, err := eng.Run(ctx, w, "pr", opts...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, w, "pr", opts...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRunUncached is the baseline: every request executes the
// PageRank kernels (result caching disabled).
func BenchmarkEngineRunUncached(b *testing.B) {
	benchEngineRun(b, pushpull.NewEngine(pushpull.WithResultCache(0)))
}

// BenchmarkEngineRunCached serves every request after the first from the
// LRU result cache.
func BenchmarkEngineRunCached(b *testing.B) {
	benchEngineRun(b, pushpull.NewEngine())
}

// BenchmarkEngineCoalesced measures single-flight deduplication with the
// result cache disabled: parallel goroutines issue the same request, so
// at any moment one of them leads a real run and the rest coalesce onto
// it — the throughput gap vs BenchmarkEngineRunUncached is what dedup
// buys a serving layer under a flood of identical requests.
func BenchmarkEngineCoalesced(b *testing.B) {
	eng := pushpull.NewEngine(pushpull.WithResultCache(0))
	g, err := pushpull.RMAT(pushpull.DefaultRMAT(13, 8, 42))
	if err != nil {
		b.Fatal(err)
	}
	w := pushpull.NewWorkload(g)
	ctx := context.Background()
	opts := []pushpull.Option{pushpull.WithDirection(pushpull.Pull), pushpull.WithIterations(20)}
	if _, err := eng.Run(ctx, w, "pr", opts...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Run(ctx, w, "pr", opts...); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ReportMetric(float64(eng.Stats().Coalesced)/float64(b.N), "coalesced/op")
}
