package pushpull

import (
	"context"
	"fmt"
	"strings"
	"time"

	"pushpull/internal/core"
	"pushpull/internal/sched"
)

// Direction selects the update direction of a run — the paper's central
// dichotomy, lifted to a run parameter instead of a per-package function
// choice. Auto lets the algorithm pick (or switch per iteration, for the
// traversal algorithms that support direction optimization).
type Direction int

const (
	// Auto lets the engine choose: direction-optimizing switching where
	// the algorithm supports it (bfs, sssp), otherwise the direction the
	// paper reports as the sane default for that algorithm.
	Auto Direction = iota
	// Push writes updates outward into vertices owned by other threads.
	Push
	// Pull reads neighbor state and updates only owned vertices.
	Pull
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case Auto:
		return "auto"
	case Push:
		return "push"
	case Pull:
		return "pull"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// dirFromCore lifts an internal direction into the public one.
func dirFromCore(d core.Direction) Direction {
	if d == core.Pull {
		return Pull
	}
	return Push
}

// Config is the resolved option set an Algorithm.Run receives. Zero
// values mean "algorithm default" throughout. Callers normally never
// build one directly — Run assembles it from functional options — but
// externally registered algorithms read it.
type Config struct {
	// Direction is the requested update direction (Auto, Push, Pull).
	Direction Direction
	// Threads is the worker count T (0: GOMAXPROCS; negative values are
	// rejected at Run entry with ErrBadOption).
	Threads int
	// Schedule picks the parallel-loop schedule (Static, Dynamic).
	Schedule Schedule
	// Switch, when set, is the adaptive policy (GenericSwitch /
	// GreedySwitch) steering direction changes or sequential fallback.
	Switch SwitchPolicy
	// Probes enables deterministic instrumented execution: the run's
	// memory events are aggregated into Report.Counters. Every shared-
	// memory registry algorithm has an instrumented variant; the dist-*
	// algorithms record their remote-operation counters unconditionally.
	Probes bool
	// Hook receives the wall time of every completed iteration.
	Hook func(iter int, elapsed time.Duration)
	// Source is the root/source vertex for traversal algorithms.
	Source V
	// Sources lists source vertices for multi-source algorithms (bc);
	// nil means all vertices.
	Sources []V
	// Iterations bounds iteration-count algorithms (pr); 0 = default.
	Iterations int
	// Damping is the PageRank damp factor when DampingSet is true;
	// otherwise the algorithm default (pr.DefaultDamping) applies.
	Damping    float64
	DampingSet bool
	// Delta is the Δ-stepping bucket width; 0 = heuristic.
	Delta float64
	// MaxIters bounds conflict-resolution iterations (gc); 0 = default.
	MaxIters int
	// Partitions is the partition count for partition-based algorithms
	// (gc, partition-aware pr/tc); 0 = the resolved thread count; negative
	// values are rejected at Run entry with ErrBadOption.
	Partitions int
	// PartitionAware requests the Partition-Awareness acceleration
	// (§5, Algorithm 8) for push-direction pr and tc.
	PartitionAware bool
	// PA optionally supplies a prebuilt Partition-Awareness graph so
	// repeated runs over the same layout skip the O(m) BuildPA; set it
	// through WithPartitionAwareGraph, which also implies PartitionAware.
	PA *PAGraph
	// Ranks is the simulated cluster size P for the dist-* algorithms
	// (0: Threads if set, else DefaultDistRanks; negative values are
	// rejected at Run entry with ErrBadOption). Shared-memory algorithms
	// ignore it.
	Ranks int
	// DegreeSorted requests the degree-sorted CSR layout: kernels run on
	// the workload's memoized degree-permuted graph and the report is
	// un-permuted at the boundary. False defers to the workload's
	// AsDegreeSorted declaration.
	DegreeSorted bool
	// HubCache is the hub-cache size k for pull kernels: 0 defers to the
	// workload's AsHubCached declaration, AutoHubCache (-1) picks the
	// size from n, k > 0 is explicit. Other negatives are rejected at Run
	// entry with ErrBadOption.
	HubCache int
	// OutOfCore requests the block-sequential out-of-core kernels: the run
	// streams adjacency from the workload's memoized block file instead of
	// in-memory arrays. False defers to the workload's AsOutOfCore
	// declaration (a pure file handle is always out-of-core).
	OutOfCore bool
}

// AutoHubCache is the HubCache/AsHubCached sentinel selecting the
// automatic hub segment size: min(4096, max(1, n/64)) — large enough to
// cover the heavy tail of a skewed degree distribution, small enough that
// the per-iteration contribution cache stays resident.
const AutoHubCache = -1

// Option configures one Run call.
type Option func(*Config)

// WithDirection pins the update direction (Push, Pull) or restores the
// default Auto.
func WithDirection(d Direction) Option { return func(c *Config) { c.Direction = d } }

// WithThreads sets the worker count T (0 means GOMAXPROCS; a negative
// count fails the run with ErrBadOption).
func WithThreads(t int) Option { return func(c *Config) { c.Threads = t } }

// WithSchedule picks the parallel-loop schedule (Static or Dynamic).
func WithSchedule(s Schedule) Option { return func(c *Config) { c.Schedule = s } }

// WithSwitchPolicy installs an adaptive switching policy: a
// *GenericSwitch flips push↔pull when conflicts dominate progress, a
// *GreedySwitch abandons parallelism for the optimized sequential scheme
// on the small remainder (§5). The built-in policies are safe to reuse
// across Run calls (the engine re-instantiates them per run); a custom
// stateful policy must be treated as single-use and single-goroutine.
func WithSwitchPolicy(p SwitchPolicy) Option { return func(c *Config) { c.Switch = p } }

// WithProbes runs the deterministic instrumented variant and aggregates
// its event counts into Report.Counters. Every shared-memory registry
// algorithm supports it; instrumented passes always run to completion
// (they never poll ctx). The dist-* algorithms attach their counters
// whether or not probes are requested.
func WithProbes() Option { return func(c *Config) { c.Probes = true } }

// WithIterationHook receives each completed iteration's wall time — the
// hook behind the paper's per-iteration series.
func WithIterationHook(h func(iter int, elapsed time.Duration)) Option {
	return func(c *Config) { c.Hook = h }
}

// WithSource sets the root/source vertex for traversal algorithms.
func WithSource(v V) Option { return func(c *Config) { c.Source = v } }

// WithSources sets the source set for multi-source algorithms (bc).
func WithSources(vs []V) Option { return func(c *Config) { c.Sources = vs } }

// WithIterations bounds iteration-count algorithms (pr's L).
func WithIterations(n int) Option { return func(c *Config) { c.Iterations = n } }

// WithDamping pins the PageRank damp factor explicitly — including zero,
// which the default-detection can otherwise not distinguish.
func WithDamping(f float64) Option {
	return func(c *Config) { c.Damping, c.DampingSet = f, true }
}

// WithDelta sets the Δ-stepping bucket width (0 = heuristic).
func WithDelta(d float64) Option { return func(c *Config) { c.Delta = d } }

// WithMaxIters bounds conflict-resolution iterations (gc's L).
func WithMaxIters(n int) Option { return func(c *Config) { c.MaxIters = n } }

// WithPartitions sets the partition count for partition-based runs.
func WithPartitions(p int) Option { return func(c *Config) { c.Partitions = p } }

// WithPartitionAwareness enables the Partition-Awareness acceleration
// (§5) for push-direction pr and tc.
func WithPartitionAwareness() Option { return func(c *Config) { c.PartitionAware = true } }

// WithPartitionAwareGraph enables Partition-Awareness with a prebuilt
// PAGraph (BuildPA), sparing repeated runs the O(m) layout construction.
func WithPartitionAwareGraph(pa *PAGraph) Option {
	return func(c *Config) { c.PA, c.PartitionAware = pa, true }
}

// WithRanks sets the simulated cluster size P for the dist-* algorithms.
func WithRanks(p int) Option { return func(c *Config) { c.Ranks = p } }

// WithDegreeSorted runs the kernels over the workload's memoized
// degree-sorted CSR permutation: vertex ids are renumbered by descending
// degree, which concentrates the hot (high-degree) rows at the front of
// every array and makes the WithHubCache hub segment contiguous. The
// report is un-permuted at the boundary, so the payload is identical to a
// plain-layout run.
func WithDegreeSorted() Option { return func(c *Config) { c.DegreeSorted = true } }

// WithHubCache enables the hub-cached pull path: the pull view is split
// into a dense segment of the k most-referenced (hub) vertices — whose
// per-iteration state is kept in a compact contiguous cache — and a
// residual segment, so the gather reads hub state cache-line friendly
// instead of chasing the full adjacency, and traversal pulls early-out on
// the hub segment once a parent is found. Wins on skewed (power-law)
// degree distributions, where the top-k vertices cover most edges. k <= 0
// selects the automatic size (AutoHubCache). Applies to pull-direction
// runs of algorithms whose Caps declare HubCache; push runs ignore it.
func WithHubCache(k int) Option {
	return func(c *Config) {
		if k <= 0 {
			k = AutoHubCache
		}
		c.HubCache = k
	}
}

// WithOutOfCore runs the block-sequential out-of-core kernels: the
// pull-view adjacency streams from the workload's memoized block file
// (mmap-backed, or bounded buffers under AsBlockBuffered) in storage
// order, so the O(m) edge data never needs to be resident — only the
// O(n) vertex state does. Applies to algorithms whose Caps declare
// OutOfCore (pr, bfs); runs are forced to the pull direction (an
// explicit Push fails with ErrBadOption) and payloads are identical to
// in-memory runs up to the usual floating-point reassociation.
func WithOutOfCore() Option { return func(c *Config) { c.OutOfCore = true } }

// ---- helpers for algorithm adapters ----

// coreOptions lowers the shared fields into the internal option struct,
// carrying the cancellation context into the per-iteration loops.
func (c *Config) coreOptions(ctx context.Context) core.Options {
	return core.Options{Threads: c.Threads, Schedule: c.Schedule, OnIteration: c.Hook, Ctx: ctx}
}

// resolveDir maps the requested direction onto an internal one, using
// def when the caller left Auto.
func (c *Config) resolveDir(def core.Direction) core.Direction {
	switch c.Direction {
	case Push:
		return core.Push
	case Pull:
		return core.Pull
	default:
		return def
	}
}

// effectiveThreads resolves Threads against the runtime, capped by n.
func (c *Config) effectiveThreads(n int) int {
	if n < 1 {
		n = 1
	}
	return sched.Clamp(c.Threads, n)
}

// partitions resolves the partition count: an explicit WithPartitions
// wins, then the workload's AsPartitioned default, then the effective
// thread count.
func (c *Config) partitions(w *Workload) int {
	if c.Partitions > 0 {
		return c.Partitions
	}
	if p := w.DefaultPartitions(); p > 0 {
		return p
	}
	return c.effectiveThreads(w.N())
}

// fingerprint renders the configuration as a deterministic, canonical
// string — the options component of an Engine's result-cache key, reused
// verbatim as the single-flight dedup key (two concurrent requests
// coalesce exactly when a completed one could have answered the other
// from cache). Two configs produce the same fingerprint exactly when an
// identical run would compute the same report, so every result-shaping
// knob is folded in with a fixed field order.
//
// It returns ok=false for configs that must never be served from cache
// (and so never coalesce either):
// an iteration hook observes live per-iteration timings, probes produce
// a measurement pass the caller wants re-executed, a caller-supplied PA
// layout and custom switch policies carry pointer-identified mutable
// state no canonical encoding can capture. The built-in policies
// (GenericSwitch, GreedySwitch, NeverSwitch) are value-parameterized and
// fingerprint by those parameters.
func (c *Config) fingerprint() (fp string, ok bool) {
	if c.Hook != nil || c.Probes || c.PA != nil {
		return "", false
	}
	sw := "-"
	switch p := c.Switch.(type) {
	case nil:
	case *core.GenericSwitch:
		sw = fmt.Sprintf("gs(%g)", p.Threshold)
	case *core.GreedySwitch:
		sw = fmt.Sprintf("grs(%g,%d)", p.Fraction, p.Total)
	case core.NeverSwitch, *core.NeverSwitch:
		sw = "never"
	default:
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "dir=%d;t=%d;sched=%d;sw=%s;src=%d;iters=%d;damp=",
		c.Direction, c.Threads, c.Schedule, sw, c.Source, c.Iterations)
	if c.DampingSet {
		fmt.Fprintf(&b, "%g", c.Damping)
	} else {
		b.WriteByte('-')
	}
	fmt.Fprintf(&b, ";delta=%g;maxit=%d;parts=%d;pa=%t;ranks=%d;ds=%t;hub=%d;ooc=%t;srcs=",
		c.Delta, c.MaxIters, c.Partitions, c.PartitionAware, c.Ranks,
		c.DegreeSorted, c.HubCache, c.OutOfCore)
	// nil and empty Sources are distinct configurations (bc: all
	// vertices vs zero sources) and must not share a key.
	if c.Sources == nil {
		b.WriteByte('-')
	}
	for _, s := range c.Sources {
		fmt.Fprintf(&b, "%d,", s)
	}
	return b.String(), true
}

// degreeSorted reports whether a run uses the degree-sorted layout: an
// explicit WithDegreeSorted, else the workload's AsDegreeSorted
// declaration.
func (c *Config) degreeSorted(w *Workload) bool {
	return c.DegreeSorted || w.IsDegreeSorted()
}

// outOfCore reports whether a run uses the out-of-core block kernels: an
// explicit WithOutOfCore, else the workload's AsOutOfCore declaration
// (which a pure file handle always carries).
func (c *Config) outOfCore(w *Workload) bool {
	return c.OutOfCore || w.IsOutOfCore()
}

// hubCacheK resolves the hub segment size of a run over n vertices:
// an explicit WithHubCache wins, then the workload's AsHubCached
// declaration; AutoHubCache maps to the automatic size, and the result is
// clamped to n. 0 means the run is not hub-cached.
func (c *Config) hubCacheK(w *Workload, n int) int {
	k := c.HubCache
	if k == 0 {
		k = w.HubCacheK()
	}
	if k == 0 {
		return 0
	}
	if k < 0 {
		k = autoHubK(n)
	}
	if k > n {
		k = n
	}
	return k
}

// autoHubK is the AutoHubCache size: min(4096, max(1, n/64)).
func autoHubK(n int) int {
	k := n / 64
	if k < 1 {
		k = 1
	}
	if k > 4096 {
		k = 4096
	}
	return k
}

// paGraph returns the caller-supplied PA layout, or the workload's
// memoized one (built on first use). A supplied layout must have been
// built from the graph being run, else the PA kernels would silently
// compute over the other graph.
func (c *Config) paGraph(w *Workload) (*PAGraph, error) {
	if c.PA != nil {
		if c.PA.G != w.Graph() {
			return nil, fmt.Errorf("pushpull: WithPartitionAwareGraph layout was built for a different graph")
		}
		return c.PA, nil
	}
	return w.PA(c.partitions(w)), nil
}
