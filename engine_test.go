package pushpull_test

// Engine tests: the serving-layer refactor. The result cache hits on the
// second identical run (keyed on workload content identity, algorithm
// and the canonical options fingerprint), non-cacheable configurations
// and bare graphs bypass it, LRU eviction bounds it, the bounded worker
// pool reports queue wait, and option domains are validated with
// ErrBadOption at Run entry.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pushpull"
)

// undirectedGraph builds a deterministic pseudo-random undirected graph.
func undirectedGraph(t testing.TB, n int, seed uint64) *pushpull.Graph {
	t.Helper()
	b := pushpull.NewBuilder(n)
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for i := 0; i < 6*n; i++ {
		b.AddEdge(pushpull.V(next()%uint64(n)), pushpull.V(next()%uint64(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// slowAlgo is a registry algorithm for pool tests: it holds a worker slot
// while honoring ctx, so admission-queue behavior is observable without
// depending on kernel timings. If an iteration hook is configured it
// fires once at entry — the pool tests use it as a "slot acquired"
// signal.
type slowAlgo struct{}

func (slowAlgo) Name() string        { return "test-slow" }
func (slowAlgo) Describe() string    { return "test-only: sleeps to exercise the admission queue" }
func (slowAlgo) Caps() pushpull.Caps { return pushpull.Caps{} }
func (slowAlgo) Run(ctx context.Context, w *pushpull.Workload, cfg *pushpull.Config) (*pushpull.Report, error) {
	if cfg.Hook != nil {
		cfg.Hook(0, 0)
	}
	stats := pushpull.RunStats{Iterations: 1}
	select {
	case <-time.After(30 * time.Millisecond):
	case <-ctx.Done():
		stats.Canceled = true
	}
	return &pushpull.Report{Result: []float64{1}, Stats: stats}, nil
}

var registerSlowOnce sync.Once

func registerSlow(t *testing.T) {
	t.Helper()
	registerSlowOnce.Do(func() {
		pushpull.MustRegister(slowAlgo{})
	})
}

// gateRuns counts real gateAlgo kernel executions across the test binary;
// tests snapshot it before and after to count executions they caused.
var gateRuns atomic.Int64

// gateAlgo is the single-flight observable: every real execution bumps
// gateRuns and builds the workload's Stats (so Workload.Builds() provides
// a second, independent execution count), then holds its worker slot for
// ~100ms so concurrently issued identical requests must overlap it.
type gateAlgo struct{}

func (gateAlgo) Name() string { return "test-gate" }
func (gateAlgo) Describe() string {
	return "test-only: counts executions and dawdles to invite coalescing"
}
func (gateAlgo) Caps() pushpull.Caps { return pushpull.Caps{} }
func (gateAlgo) Run(ctx context.Context, w *pushpull.Workload, cfg *pushpull.Config) (*pushpull.Report, error) {
	gateRuns.Add(1)
	w.Stats()
	stats := pushpull.RunStats{Iterations: 1}
	select {
	case <-time.After(100 * time.Millisecond):
	case <-ctx.Done():
		stats.Canceled = true
	}
	return &pushpull.Report{Result: []float64{1}, Stats: stats}, nil
}

var registerGateOnce sync.Once

func registerGate(t *testing.T) {
	t.Helper()
	registerGateOnce.Do(func() {
		pushpull.MustRegister(gateAlgo{})
	})
}

// TestEngineCacheHit is the tentpole acceptance check: the second
// identical Run on the same Engine and Workload is served from cache —
// Stats.CacheHit set, payload shared, no new kernel work on the handle.
func TestEngineCacheHit(t *testing.T) {
	eng := pushpull.NewEngine()
	w := pushpull.NewWorkload(undirectedGraph(t, 500, 42))
	opts := []pushpull.Option{pushpull.WithIterations(10), pushpull.WithThreads(2)}

	first, err := eng.Run(context.Background(), w, "pr", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheHit {
		t.Fatal("first run reported CacheHit")
	}
	second, err := eng.Run(context.Background(), w, "pr", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.CacheHit {
		t.Fatal("second identical run was not served from cache")
	}
	if d := pushpull.MaxDiff(first.Ranks(), second.Ranks()); d != 0 {
		t.Errorf("cached payload differs from original by %g", d)
	}
	if second.Algorithm != "pr" || second.Stats.Iterations != first.Stats.Iterations {
		t.Errorf("cached report lost metadata: %+v", second)
	}
	st := eng.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}

	// A fresh handle over the same content shares the identity, so the
	// cache survives re-wrapping the graph.
	w2 := pushpull.NewWorkload(undirectedGraph(t, 500, 42))
	if w.ID() != w2.ID() {
		t.Fatalf("equal content, different IDs: %s vs %s", w.ID(), w2.ID())
	}
	third, err := eng.Run(context.Background(), w2, "pr", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Stats.CacheHit {
		t.Error("run on an equal-content handle missed the cache")
	}
}

// TestEngineCacheKeying: any result-shaping divergence — options,
// algorithm, graph content, declared kind — is a different key.
func TestEngineCacheKeying(t *testing.T) {
	eng := pushpull.NewEngine()
	ctx := context.Background()
	w := pushpull.NewWorkload(undirectedGraph(t, 300, 7))

	if _, err := eng.Run(ctx, w, "pr", pushpull.WithIterations(5)); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		on   pushpull.Runnable
		algo string
		opts []pushpull.Option
	}{
		{"different iterations", w, "pr", []pushpull.Option{pushpull.WithIterations(6)}},
		{"different direction", w, "pr", []pushpull.Option{pushpull.WithIterations(5), pushpull.WithDirection(pushpull.Push)}},
		{"different algorithm", w, "tc", nil},
		{"different content", pushpull.NewWorkload(undirectedGraph(t, 300, 8)), "pr", []pushpull.Option{pushpull.WithIterations(5)}},
		{"different kind", pushpull.Partitioned(undirectedGraph(t, 300, 7), 4), "pr", []pushpull.Option{pushpull.WithIterations(5)}},
	}
	for _, tc := range cases {
		rep, err := eng.Run(ctx, tc.on, tc.algo, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if rep.Stats.CacheHit {
			t.Errorf("%s: unexpectedly served from cache", tc.name)
		}
	}

	// nil vs empty Sources are different bc configurations (all vertices
	// vs zero sources) and must not share a cache entry.
	full, err := eng.Run(ctx, w, "bc") // nil Sources: exact all-vertices BC
	if err != nil {
		t.Fatal(err)
	}
	empty, err := eng.Run(ctx, w, "bc", pushpull.WithSources([]pushpull.V{}))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Stats.CacheHit {
		t.Error("empty-source bc served the all-vertices cache entry")
	}
	if pushpull.SumFloats(full.Ranks()) == pushpull.SumFloats(empty.Ranks()) {
		t.Error("all-vertices and zero-source bc agree; the test lost its discriminating power")
	}
}

// TestEngineUncacheable: hooks, probes and bare graphs never touch the
// cache — the second identical call runs for real.
func TestEngineUncacheable(t *testing.T) {
	eng := pushpull.NewEngine()
	ctx := context.Background()
	g := undirectedGraph(t, 300, 9)
	w := pushpull.NewWorkload(g)

	cases := []struct {
		name string
		on   pushpull.Runnable
		opts []pushpull.Option
	}{
		{"bare graph", g, []pushpull.Option{pushpull.WithIterations(5)}},
		{"probes", w, []pushpull.Option{pushpull.WithIterations(5), pushpull.WithProbes()}},
		{"hook", w, []pushpull.Option{pushpull.WithIterations(5),
			pushpull.WithIterationHook(func(int, time.Duration) {})}},
	}
	for _, tc := range cases {
		for i := 0; i < 2; i++ {
			rep, err := eng.Run(ctx, tc.on, "pr", tc.opts...)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			if rep.Stats.CacheHit {
				t.Errorf("%s: call %d served from cache", tc.name, i+1)
			}
		}
	}
	if st := eng.Stats(); st.Uncacheable != 6 || st.CacheHits != 0 {
		t.Errorf("stats = %+v, want 6 uncacheable, 0 hits", st)
	}
}

// TestEngineLRUEviction: a capacity-1 cache keeps only the most recent
// result, so A-B-A misses on the final A.
func TestEngineLRUEviction(t *testing.T) {
	eng := pushpull.NewEngine(pushpull.WithResultCache(1))
	ctx := context.Background()
	w := pushpull.NewWorkload(undirectedGraph(t, 300, 11))
	runA := []pushpull.Option{pushpull.WithIterations(3)}
	runB := []pushpull.Option{pushpull.WithIterations(4)}

	for i, opts := range [][]pushpull.Option{runA, runB, runA} {
		rep, err := eng.Run(ctx, w, "pr", opts...)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Stats.CacheHit {
			t.Errorf("run %d hit the cache despite capacity 1", i+1)
		}
	}
	if st := eng.Stats(); st.CacheEntries != 1 || st.CacheMisses != 3 {
		t.Errorf("stats = %+v, want 1 entry / 3 misses", st)
	}
}

// TestEngineDefaultUncached: the facade's default engine preserves
// one-shot semantics — identical Runs always execute.
func TestEngineDefaultUncached(t *testing.T) {
	w := pushpull.NewWorkload(undirectedGraph(t, 200, 13))
	for i := 0; i < 2; i++ {
		rep := run(t, w, "pr", pushpull.WithIterations(3))
		if rep.Stats.CacheHit {
			t.Fatalf("facade Run %d served from cache", i+1)
		}
	}
}

// TestEngineQueueWait: with a single worker slot, a concurrent run waits
// and reports the wait; cache hits bypass the pool entirely.
func TestEngineQueueWait(t *testing.T) {
	registerSlow(t)
	eng := pushpull.NewEngine(pushpull.WithWorkers(1), pushpull.WithResultCache(0))
	w := pushpull.NewWorkload(undirectedGraph(t, 50, 17))

	slotHeld := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep, err := eng.Run(context.Background(), w, "test-slow",
			pushpull.WithIterationHook(func(int, time.Duration) { close(slotHeld) }))
		if err != nil {
			t.Error(err)
			return
		}
		if rep.Stats.QueueWait != 0 {
			t.Errorf("first run waited %v, want immediate admission", rep.Stats.QueueWait)
		}
	}()
	<-slotHeld // the single worker slot is now occupied for ~30ms
	second, err := eng.Run(context.Background(), w, "test-slow")
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.QueueWait == 0 {
		t.Error("second run reports no queue wait despite a full pool")
	}
	wg.Wait()
	if st := eng.Stats(); st.QueuedRuns != 1 || st.QueueWait == 0 {
		t.Errorf("stats = %+v, want 1 queued run with nonzero wait", st)
	}
}

// TestEngineQueueCancel: a run canceled while waiting for admission
// returns the context error without ever executing.
func TestEngineQueueCancel(t *testing.T) {
	registerSlow(t)
	eng := pushpull.NewEngine(pushpull.WithWorkers(1), pushpull.WithResultCache(0))
	w := pushpull.NewWorkload(undirectedGraph(t, 50, 19))

	slotHeld := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, err := eng.Run(context.Background(), w, "test-slow",
			pushpull.WithIterationHook(func(int, time.Duration) { close(slotHeld) }))
		if err != nil {
			t.Error(err)
		}
	}()
	<-slotHeld // the slot is occupied: the next run must queue
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := eng.Run(ctx, w, "test-slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("queued run returned %v, want context.DeadlineExceeded", err)
	}
	<-done
}

// TestEngineCanceledRunNotCached: a canceled (partial) report must not be
// served to later callers.
func TestEngineCanceledRunNotCached(t *testing.T) {
	registerSlow(t)
	eng := pushpull.NewEngine()
	w := pushpull.NewWorkload(undirectedGraph(t, 50, 23))

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	rep, err := eng.Run(ctx, w, "test-slow")
	if err == nil || rep == nil || !rep.Stats.Canceled {
		t.Fatalf("short-deadline run: rep=%+v err=%v, want canceled partial report", rep, err)
	}
	full, err := eng.Run(context.Background(), w, "test-slow")
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.CacheHit || full.Stats.Canceled {
		t.Errorf("run after canceled attempt: %+v, want a fresh complete run", full.Stats)
	}
}

// TestRunBadOption: negative counts fail at Run entry with the typed
// ErrBadOption instead of clamping or panicking in a kernel.
func TestRunBadOption(t *testing.T) {
	g := undirectedGraph(t, 100, 29)
	cases := []struct {
		name string
		algo string
		opt  pushpull.Option
	}{
		{"threads", "pr", pushpull.WithThreads(-1)},
		{"partitions", "gc", pushpull.WithPartitions(-2)},
		{"ranks", "dist-pr-mp", pushpull.WithRanks(-3)},
	}
	for _, tc := range cases {
		_, err := pushpull.Run(context.Background(), g, tc.algo, tc.opt)
		if !errors.Is(err, pushpull.ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", tc.name, err)
		}
	}
	// Zero still means "use the default" everywhere.
	if _, err := pushpull.Run(context.Background(), g, "pr",
		pushpull.WithThreads(0), pushpull.WithPartitions(0), pushpull.WithRanks(0)); err != nil {
		t.Errorf("zero-valued options rejected: %v", err)
	}
}

// TestEngineWorkloadRegistry: the named-workload registry behind the
// serving front registers, replaces and lists handles.
func TestEngineWorkloadRegistry(t *testing.T) {
	eng := pushpull.NewEngine()
	w1 := pushpull.NewWorkload(undirectedGraph(t, 100, 31))
	w2 := pushpull.NewWorkload(undirectedGraph(t, 200, 37))

	if err := eng.RegisterWorkload("", w1); err == nil {
		t.Error("empty name accepted")
	}
	if err := eng.RegisterWorkload("g", nil); err == nil {
		t.Error("nil workload accepted")
	}
	if err := eng.RegisterWorkload("g", w1); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterWorkload("h", w2); err != nil {
		t.Fatal(err)
	}
	if got, _ := eng.Workload("g"); got != w1 {
		t.Error("lookup returned the wrong handle")
	}
	// PUT semantics: re-registering a name replaces the handle.
	if err := eng.RegisterWorkload("g", w2); err != nil {
		t.Fatal(err)
	}
	if got, _ := eng.Workload("g"); got != w2 {
		t.Error("re-register did not replace the handle")
	}
	names := eng.WorkloadNames()
	if len(names) != 2 || names[0] != "g" || names[1] != "h" {
		t.Errorf("WorkloadNames() = %v, want [g h]", names)
	}
}

// TestEngineSingleFlight is the dedup acceptance check: N concurrent
// identical requests produce exactly one underlying kernel execution —
// proven by the run counter AND by Workload.Builds() — with every
// follower served a report flagged Coalesced (or CacheHit, for a
// follower scheduled only after the leader finished).
func TestEngineSingleFlight(t *testing.T) {
	registerGate(t)
	eng := pushpull.NewEngine()
	w := pushpull.NewWorkload(undirectedGraph(t, 400, 77))

	const n = 8
	before := gateRuns.Load()
	reports := make([]*pushpull.Report, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := eng.Run(context.Background(), w, "test-gate")
			if err != nil {
				t.Error(err)
				return
			}
			reports[i] = rep
		}(i)
	}
	wg.Wait()

	if execs := gateRuns.Load() - before; execs != 1 {
		t.Errorf("%d concurrent identical requests ran the kernel %d times, want exactly 1", n, execs)
	}
	if b := w.Builds(); b.Stats != 1 {
		t.Errorf("Builds().Stats = %d, want 1 (one execution, one stats build)", b.Stats)
	}
	var leaders, coalesced, hits int
	for _, rep := range reports {
		switch {
		case rep == nil:
		case rep.Stats.Coalesced:
			coalesced++
		case rep.Stats.CacheHit:
			hits++
		default:
			leaders++
		}
	}
	if leaders != 1 || coalesced+hits != n-1 {
		t.Errorf("outcomes: %d real, %d coalesced, %d cache hits; want 1 real and %d followers",
			leaders, coalesced, hits, n-1)
	}
	if coalesced == 0 {
		t.Error("no request coalesced despite a 100ms execution window")
	}
	if st := eng.Stats(); st.Coalesced != uint64(coalesced) {
		t.Errorf("Stats().Coalesced = %d, want %d", st.Coalesced, coalesced)
	}
}

// TestEngineSingleFlightLeaderFailure: followers never inherit a canceled
// (partial) leader result — they rerun for real.
func TestEngineSingleFlightLeaderFailure(t *testing.T) {
	registerGate(t)
	eng := pushpull.NewEngine(pushpull.WithResultCache(0))
	w := pushpull.NewWorkload(undirectedGraph(t, 100, 79))

	before := gateRuns.Load()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(leaderIn)
		_, err := eng.Run(leaderCtx, w, "test-gate")
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled leader returned %v, want context.Canceled", err)
		}
	}()
	<-leaderIn
	time.Sleep(20 * time.Millisecond) // let the leader enter its run
	follower := make(chan *pushpull.Report, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep, err := eng.Run(context.Background(), w, "test-gate")
		if err != nil {
			t.Error(err)
			return
		}
		follower <- rep
	}()
	time.Sleep(20 * time.Millisecond) // let the follower park on the flight
	cancelLeader()
	wg.Wait()

	rep := <-follower
	if rep.Stats.Canceled || rep.Stats.Coalesced {
		t.Errorf("follower stats %+v, want a fresh complete run after leader cancellation", rep.Stats)
	}
	if execs := gateRuns.Load() - before; execs != 2 {
		t.Errorf("kernel ran %d times, want 2 (failed leader + retrying follower)", execs)
	}
}

// TestEngineDefaultNoSingleFlight: the facade's default engine never
// coalesces — concurrent identical one-shot Runs all execute for real.
func TestEngineDefaultNoSingleFlight(t *testing.T) {
	registerGate(t)
	w := pushpull.NewWorkload(undirectedGraph(t, 100, 81))

	before := gateRuns.Load()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, err := pushpull.Run(context.Background(), w, "test-gate")
			if err != nil {
				t.Error(err)
				return
			}
			if rep.Stats.Coalesced || rep.Stats.CacheHit {
				t.Errorf("one-shot Run was deduplicated: %+v", rep.Stats)
			}
		}()
	}
	wg.Wait()
	if execs := gateRuns.Load() - before; execs != 2 {
		t.Errorf("kernel ran %d times, want 2 (default engine must not coalesce)", execs)
	}
}

// TestEngineCacheTTL: an entry older than the TTL is evicted on lookup
// and the request runs for real (counted as an expired miss).
func TestEngineCacheTTL(t *testing.T) {
	eng := pushpull.NewEngine(pushpull.WithCacheTTL(40 * time.Millisecond))
	ctx := context.Background()
	w := pushpull.NewWorkload(undirectedGraph(t, 300, 83))
	opts := []pushpull.Option{pushpull.WithIterations(3)}

	if _, err := eng.Run(ctx, w, "pr", opts...); err != nil {
		t.Fatal(err)
	}
	fresh, err := eng.Run(ctx, w, "pr", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh.Stats.CacheHit {
		t.Fatal("immediate rerun missed the cache")
	}
	time.Sleep(80 * time.Millisecond)
	stale, err := eng.Run(ctx, w, "pr", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Stats.CacheHit {
		t.Fatal("rerun after the TTL was served the expired entry")
	}
	if st := eng.Stats(); st.Expired != 1 || st.CacheHits != 1 || st.CacheMisses != 2 {
		t.Errorf("stats = %+v, want 1 expired / 1 hit / 2 misses", st)
	}
}

// TestEngineInvalidateOnOverwrite is the regression test for the stale-
// result bug: re-registering a name with different content must drop the
// replaced graph's cached results (they could never hit again), while
// re-registering equal content keeps them.
func TestEngineInvalidateOnOverwrite(t *testing.T) {
	eng := pushpull.NewEngine()
	ctx := context.Background()
	a := pushpull.NewWorkload(undirectedGraph(t, 300, 87))
	opts := []pushpull.Option{pushpull.WithIterations(4)}

	if err := eng.RegisterWorkload("g", a); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, a, "pr", opts...); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.CacheEntries != 1 {
		t.Fatalf("cache entries = %d after one run, want 1", st.CacheEntries)
	}

	// Equal content under the same name: the cached result stays valid.
	if err := eng.RegisterWorkload("g", pushpull.NewWorkload(undirectedGraph(t, 300, 87))); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.CacheEntries != 1 {
		t.Errorf("re-register of equal content dropped the cache (entries = %d)", st.CacheEntries)
	}

	// Different content: the old graph's entries are stale — gone.
	b := pushpull.NewWorkload(undirectedGraph(t, 300, 89))
	if err := eng.RegisterWorkload("g", b); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.CacheEntries != 0 {
		t.Errorf("overwrite with different content left %d stale cache entries", st.CacheEntries)
	}
	rep, err := eng.Run(ctx, b, "pr", opts...)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.CacheHit {
		t.Error("run on the replacement graph was served a stale cached result")
	}

	// Explicit invalidation drops exactly the handle's entries.
	if n := eng.Invalidate(b); n != 1 {
		t.Errorf("Invalidate removed %d entries, want 1", n)
	}
	if st := eng.Stats(); st.CacheEntries != 0 {
		t.Errorf("cache entries = %d after explicit invalidation, want 0", st.CacheEntries)
	}
}

// TestEngineDropWorkload: dropping a graph removes the binding and its
// cached results; dropping an unknown name reports false.
func TestEngineDropWorkload(t *testing.T) {
	eng := pushpull.NewEngine()
	w := pushpull.NewWorkload(undirectedGraph(t, 200, 91))
	if err := eng.RegisterWorkload("g", w); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), w, "pr", pushpull.WithIterations(3)); err != nil {
		t.Fatal(err)
	}
	ok, err := eng.DropWorkload("g")
	if err != nil || !ok {
		t.Fatalf("DropWorkload = %v, %v, want true, nil", ok, err)
	}
	if _, still := eng.Workload("g"); still {
		t.Error("workload still registered after drop")
	}
	if st := eng.Stats(); st.CacheEntries != 0 {
		t.Errorf("drop left %d cache entries", st.CacheEntries)
	}
	if ok, err := eng.DropWorkload("g"); ok || err != nil {
		t.Errorf("second drop = %v, %v, want false, nil", ok, err)
	}
}

// shardRuns snapshots the per-shard run counters.
func shardRuns(eng *pushpull.Engine) []uint64 {
	st := eng.Stats()
	runs := make([]uint64, len(st.Shards))
	for i, sh := range st.Shards {
		runs[i] = sh.Runs
	}
	return runs
}

// shardOf probes which shard a workload's runs land on.
func shardOf(t *testing.T, eng *pushpull.Engine, w *pushpull.Workload) int {
	t.Helper()
	before := shardRuns(eng)
	if _, err := eng.Run(context.Background(), w, "pr", pushpull.WithIterations(1)); err != nil {
		t.Fatal(err)
	}
	after := shardRuns(eng)
	for i := range after {
		if after[i] > before[i] {
			return i
		}
	}
	t.Fatal("run landed on no shard")
	return -1
}

// TestEngineShardPlacement: placement is deterministic by content (the
// same workload always lands on the same shard), distinct workloads
// spread across shards, and partition-aware runs stick to the shard
// owning their PA split.
func TestEngineShardPlacement(t *testing.T) {
	eng := pushpull.NewEngine(pushpull.WithShards(3), pushpull.WithResultCache(0))
	seen := map[int]bool{}
	for seed := uint64(101); seed < 113; seed++ {
		w := pushpull.NewWorkload(undirectedGraph(t, 200, seed))
		first := shardOf(t, eng, w)
		if again := shardOf(t, eng, w); again != first {
			t.Errorf("seed %d: placement moved shard %d → %d", seed, first, again)
		}
		seen[first] = true
	}
	if len(seen) < 2 {
		t.Errorf("12 distinct workloads all landed on one shard: %v", seen)
	}

	// PA runs route by (content, partition count): identical PA runs
	// land together.
	pa := pushpull.NewEngine(pushpull.WithShards(4), pushpull.WithResultCache(0))
	w := pushpull.NewWorkload(undirectedGraph(t, 200, 131))
	opts := []pushpull.Option{pushpull.WithDirection(pushpull.Push),
		pushpull.WithPartitionAwareness(), pushpull.WithPartitions(3), pushpull.WithThreads(3)}
	for i := 0; i < 2; i++ {
		if _, err := pa.Run(context.Background(), w, "pr", opts...); err != nil {
			t.Fatal(err)
		}
	}
	runs := shardRuns(pa)
	var total, maxed uint64
	for _, r := range runs {
		total += r
		if r > maxed {
			maxed = r
		}
	}
	if total != 2 || maxed != 2 {
		t.Errorf("PA runs spread as %v, want both on one shard", runs)
	}
}

// TestEngineShardNoHeadOfLine is the sharding acceptance check: with one
// worker per shard, a run against a graph on a busy shard queues, but a
// run against a graph on another shard is admitted immediately — the hot
// graph no longer head-of-line-blocks the rest.
func TestEngineShardNoHeadOfLine(t *testing.T) {
	registerSlow(t)
	// Probe placement on an unbounded twin: placement depends only on
	// content identity and shard count, so it transfers to the real
	// engine below.
	probe := pushpull.NewEngine(pushpull.WithShards(2), pushpull.WithResultCache(0))
	var hot, cold *pushpull.Workload
	hotShard := -1
	for seed := uint64(211); seed < 231; seed++ {
		w := pushpull.NewWorkload(undirectedGraph(t, 100, seed))
		sh := shardOf(t, probe, w)
		if hot == nil {
			hot, hotShard = w, sh
			continue
		}
		if sh != hotShard {
			cold = w
			break
		}
	}
	if cold == nil {
		t.Fatal("no pair of workloads on distinct shards among 20 seeds")
	}

	eng := pushpull.NewEngine(pushpull.WithShards(2), pushpull.WithWorkers(1), pushpull.WithResultCache(0))
	slotHeld := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// The hook makes the run uncacheable (no single-flight) and
		// doubles as the "slot acquired" signal.
		if _, err := eng.Run(context.Background(), hot, "test-slow",
			pushpull.WithIterationHook(func(int, time.Duration) { close(slotHeld) })); err != nil {
			t.Error(err)
		}
	}()
	<-slotHeld // hot's shard is now saturated for ~30ms

	rep, err := eng.Run(context.Background(), cold, "test-slow",
		pushpull.WithIterationHook(func(int, time.Duration) {}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.QueueWait != 0 {
		t.Errorf("run on the cold shard waited %v behind the hot graph", rep.Stats.QueueWait)
	}
	wg.Wait()
	st := eng.Stats()
	if st.QueuedRuns != 0 {
		t.Errorf("stats = %+v, want no queued runs across shards", st)
	}
	if len(st.Shards) != 2 {
		t.Fatalf("got %d shard stats, want 2", len(st.Shards))
	}
}

// TestWorkloadIDDistinguishesKind: same adjacency, different declared
// kind ⇒ different identity (the kind changes what a run computes).
func TestWorkloadIDDistinguishesKind(t *testing.T) {
	g := directedGraph(t, 200, false)
	plain := pushpull.NewWorkload(g).ID()
	directed := pushpull.Directed(g).ID()
	parts := pushpull.Partitioned(g, 8).ID()
	if plain == directed || plain == parts || directed == parts {
		t.Errorf("kind not folded into identity: plain=%s directed=%s partitioned=%s",
			plain, directed, parts)
	}
	// Stable across calls on one handle.
	w := pushpull.NewWorkload(g)
	if w.ID() != w.ID() {
		t.Error("ID not stable across calls")
	}
}
